(* Plan linter: consistency checks over Engine.Planner access paths.

   The linter re-derives, independently of the planner, which WHERE
   conjunct justifies each access path and verifies three properties:

   - key shape: probe keys are non-NULL and their storage class is
     compatible with the indexed column (a NULL or cross-class key can
     never match stored keys under the dialect's comparison order);
   - collation: the comparison collation of the justifying conjunct
     equals the index key collation (a NOCASE probe of a BINARY index
     would skip matching rows);
   - nullability shape: index scans skip NULL keys, so the pushed-down
     conjunct must be NULL-rejecting — re-typechecking it under an
     environment where the probed column is Definitely_null must yield a
     Definitely_null (i.e. UNKNOWN, filtered) predicate.

   The checks deliberately re-implement only the *sound* planner rules:
   paths produced by an injected planner bug (the DESC-index strict-bound
   range, the IS-NOT partial-index inference) fail them, which is what
   makes the linter a self-check oracle. *)

open Sqlval
module A = Sqlast.Ast
module P = Engine.Planner

let lc = String.lowercase_ascii

let index_collation (ix : Storage.Index.t) =
  match ix.Storage.Index.collations with
  | [||] -> Collation.Binary
  | cs -> cs.(0)

let leading_column (ix : Storage.Index.t) =
  match ix.Storage.Index.definition with
  | { A.ic_expr = A.Col { column; _ }; _ } :: _ -> Some column
  | _ -> None

let is_column_ref column = function
  | A.Col { column = c; _ } -> lc c = lc column
  | _ -> false

(* Constant-fold with the engine's own semantics so linter constants agree
   with planner constants. *)
let const_value (env : Engine.Eval.env) e =
  if A.expr_columns e = [] then
    match
      Engine.Eval.eval
        {
          env with
          Engine.Eval.resolve =
            (Engine.Eval.const_env env.Engine.Eval.dialect).Engine.Eval.resolve;
        }
        e
    with
    | Ok v -> Some v
    | Error _ -> None
  else None

(* Canonical stored-key form of a probe constant (sqlite column affinity). *)
let probe_value (env : Engine.Eval.env) (table : Storage.Schema.table) column v
    =
  match Storage.Schema.find_column table column with
  | Some (_, col) when Dialect.equal env.Engine.Eval.dialect Dialect.Sqlite_like
    ->
      Coerce.apply_affinity (Datatype.affinity col.Storage.Schema.ty) v
  | _ -> v

(* Probe key class vs. indexed column class, via the Typecheck lattice.
   sqlite probes go through affinity conversion, so anything goes there. *)
let key_class_ok (env : Engine.Eval.env) (table : Storage.Schema.table) column
    v =
  let dialect = env.Engine.Eval.dialect in
  Dialect.equal dialect Dialect.Sqlite_like
  ||
  match Storage.Schema.find_column table column with
  | None -> false
  | Some (_, col) ->
      Typecheck.compatible_class
        (Typecheck.class_of_value v)
        (Typecheck.class_of_column dialect col.Storage.Schema.ty)

(* Is the conjunct NULL-rejecting for [column]?  Re-typecheck it in an
   environment where the probed column is Definitely_null: if the result
   is Definitely_null (UNKNOWN, hence filtered), rows with a NULL key can
   never satisfy the conjunct and skipping NULL index entries is sound. *)
let null_rejecting (env : Engine.Eval.env) (table : Storage.Schema.table)
    column conj =
  let t = Typecheck.table_of_schema table in
  let t =
    {
      t with
      Typecheck.tab_columns =
        List.map
          (fun (c : Typecheck.column) ->
            if lc c.Typecheck.col_name = lc column then
              { c with Typecheck.col_nullability = Nullability.Definitely_null }
            else c)
          t.Typecheck.tab_columns;
    }
  in
  let tenv = Typecheck.env env.Engine.Eval.dialect [ t ] in
  let ty, _ = Typecheck.check_expr tenv conj in
  Nullability.equal ty.Typecheck.ty_nullability Nullability.Definitely_null

let sprintf = Printf.sprintf

type state = { mutable diags : Diagnostic.t list }

let err st code msg =
  st.diags <- Diagnostic.error ~code ~loc:"plan" msg :: st.diags

(* Sound partial-index implication: a conjunct syntactically equal to the
   predicate, or predicate [c IS NOT NULL] with an equality conjunct
   [c = lit] (lit non-NULL).  The planner's buggy IS-NOT rule is
   intentionally absent. *)
let sound_implies env cs predicate =
  List.exists (A.equal_expr predicate) cs
  ||
  match predicate with
  | A.Is { negated = true; arg = A.Col { column; _ }; rhs = A.Is_null }
  | A.Unary
      ( A.Not,
        A.Is { negated = false; arg = A.Col { column; _ }; rhs = A.Is_null } )
    ->
      List.exists
        (fun conj ->
          match conj with
          | A.Binary (A.Eq, a, b) ->
              let ok side other =
                is_column_ref column side
                &&
                match const_value env other with
                | Some v -> not (Value.is_null v)
                | None -> false
              in
              ok a b || ok b a
          | _ -> false)
        cs
  | _ -> false

let check_index st (table : Storage.Schema.table) (ix : Storage.Index.t) =
  if lc ix.Storage.Index.on_table <> lc table.Storage.Schema.table_name then begin
    err st Diagnostic.Plan_unjustified
      (sprintf "index %s is on table %s, not %s" ix.Storage.Index.index_name
         ix.Storage.Index.on_table table.Storage.Schema.table_name);
    false
  end
  else true

let check_partial_usable st env cs (ix : Storage.Index.t) =
  match ix.Storage.Index.where with
  | None -> ()
  | Some pred ->
      if not (sound_implies env cs pred) then
        err st Diagnostic.Plan_partial
          (sprintf
             "the WHERE clause does not imply the predicate of partial \
              index %s"
             ix.Storage.Index.index_name)

(* Equality conjuncts on [col] whose other side constant-folds. *)
let eq_conjuncts env cs col =
  List.filter_map
    (fun conj ->
      match conj with
      | A.Binary (A.Eq, a, b) when is_column_ref col a ->
          Option.map (fun v -> (conj, b, v)) (const_value env b)
      | A.Binary (A.Eq, a, b) when is_column_ref col b ->
          Option.map (fun v -> (conj, a, v)) (const_value env a)
      | _ -> None)
    cs

(* Inequality conjuncts on [col], normalized to [col OP const]. *)
let range_conjuncts env cs col =
  let flip = function
    | A.Lt -> A.Gt
    | A.Le -> A.Ge
    | A.Gt -> A.Lt
    | A.Ge -> A.Le
    | op -> op
  in
  List.filter_map
    (fun conj ->
      match conj with
      | A.Binary (((A.Lt | A.Le | A.Gt | A.Ge) as op), a, b)
        when is_column_ref col a ->
          Option.map (fun v -> (conj, op, b, v)) (const_value env b)
      | A.Binary (((A.Lt | A.Le | A.Gt | A.Ge) as op), a, b)
        when is_column_ref col b ->
          Option.map (fun v -> (conj, flip op, a, v)) (const_value env a)
      | _ -> None)
    cs

let check_null_rejecting st env table col conj =
  if not (null_rejecting env table col conj) then
    err st Diagnostic.Plan_nullability
      (sprintf
         "pushed-down conjunct on column %s does not reject NULL, but the \
          index scan skips NULL keys"
         col)

(* Match a probe key against candidate justifying conjuncts: first by
   converted value, then by comparison collation. *)
let justify st env table ix col ~what key candidates =
  let value_matches =
    List.filter
      (fun (_, _other, v) -> Value.equal (probe_value env table col v) key)
      candidates
  in
  match candidates with
  | [] ->
      err st Diagnostic.Plan_unjustified
        (sprintf "no WHERE conjunct on column %s justifies the %s" col what)
  | _ -> (
      match value_matches with
      | [] ->
          err st Diagnostic.Plan_unjustified
            (sprintf "the %s key %s matches no WHERE conjunct on column %s"
               what (Value.show key) col)
      | _ -> (
          let coll_matches =
            List.filter
              (fun (_, other, _) ->
                Collation.equal
                  (Engine.Eval.comparison_collation env (A.col col) other)
                  (index_collation ix))
              value_matches
          in
          match coll_matches with
          | [] ->
              err st Diagnostic.Plan_collation
                (sprintf
                   "the %s comparison collation differs from index %s's key \
                    collation %s"
                   what ix.Storage.Index.index_name
                   (Collation.show (index_collation ix)))
          | (conj, _, _) :: _ -> check_null_rejecting st env table col conj))

let check_key st env table col ~what (v : Value.t) =
  if Value.is_null v then
    err st Diagnostic.Plan_null_key
      (sprintf "NULL %s key on column %s can never match" what col)
  else if not (key_class_ok env table col v) then
    err st Diagnostic.Plan_key_class
      (sprintf "%s key %s has a class incompatible with column %s" what
         (Value.show v) col)

let rec lint_path st (env : Engine.Eval.env) (catalog : Storage.Catalog.t)
    (table : Storage.Schema.table) cs (path : P.path) =
  let single_column_probe ix ~what k =
    if check_index st table ix then begin
      check_partial_usable st env cs ix;
      if List.length ix.Storage.Index.definition <> 1 then
        err st Diagnostic.Plan_unjustified
          (sprintf "%s over multi-column index %s" what
             ix.Storage.Index.index_name)
      else
        match leading_column ix with
        | None ->
            err st Diagnostic.Plan_unjustified
              (sprintf "%s over expression index %s" what
                 ix.Storage.Index.index_name)
        | Some col -> k col
    end
  in
  match path with
  | P.Full_scan -> ()
  | P.Index_eq { index = ix; key } ->
      single_column_probe ix ~what:"equality probe" (fun col ->
          if Array.length key <> 1 then
            err st Diagnostic.Plan_unjustified
              (sprintf "equality probe with %d key fields on a 1-column \
                        index"
                 (Array.length key))
          else begin
            let v = key.(0) in
            check_key st env table col ~what:"probe" v;
            if not (Value.is_null v) then
              justify st env table ix col ~what:"equality probe" v
                (eq_conjuncts env cs col)
          end)
  | P.Index_range { index = ix; lo; hi } ->
      single_column_probe ix ~what:"range scan" (fun col ->
          if lo = None && hi = None then
            err st Diagnostic.Plan_unjustified
              "range scan with neither bound set";
          let ranges = range_conjuncts env cs col in
          let side ~what ~ops bound =
            match bound with
            | None -> ()
            | Some ((v : Value.t), inclusive) ->
                check_key st env table col ~what v;
                if not (Value.is_null v) then
                  let candidates =
                    List.filter_map
                      (fun (conj, op, other, cv) ->
                        let matches_op =
                          List.exists
                            (fun (o, incl) -> op = o && incl = inclusive)
                            ops
                        in
                        if matches_op then Some (conj, other, cv) else None)
                      ranges
                  in
                  justify st env table ix col ~what v candidates
          in
          (* a lower bound comes from col > / >= const, an upper bound from
             col < / <= const *)
          side ~what:"lower bound"
            ~ops:[ (A.Gt, false); (A.Ge, true) ]
            lo;
          side ~what:"upper bound"
            ~ops:[ (A.Lt, false); (A.Le, true) ]
            hi)
  | P.Index_like_prefix { index = ix; prefix } ->
      single_column_probe ix ~what:"LIKE prefix scan" (fun col ->
          check_key st env table col ~what:"prefix" (Value.Text prefix);
          let case_sensitive =
            match env.Engine.Eval.dialect with
            | Dialect.Postgres_like -> true
            | Dialect.Mysql_like -> false
            | Dialect.Sqlite_like -> env.Engine.Eval.case_sensitive_like
          in
          let wanted =
            if case_sensitive then Collation.Binary else Collation.Nocase
          in
          if not (Collation.equal (index_collation ix) wanted) then
            err st Diagnostic.Plan_collation
              (sprintf
                 "LIKE prefix scan over index %s with key collation %s \
                  (needs %s)"
                 ix.Storage.Index.index_name
                 (Collation.show (index_collation ix))
                 (Collation.show wanted));
          let justifier =
            List.find_opt
              (fun conj ->
                match conj with
                | A.Like
                    {
                      negated = false;
                      arg;
                      pattern = A.Lit (Value.Text pat);
                      escape = None;
                    } ->
                    is_column_ref col arg
                    && Like_matcher.literal_prefix pat = prefix
                    && String.length prefix > 0
                | _ -> false)
              cs
          in
          match justifier with
          | None ->
              err st Diagnostic.Plan_unjustified
                (sprintf
                   "no LIKE conjunct on column %s has literal prefix %S" col
                   prefix)
          | Some conj -> check_null_rejecting st env table col conj)
  | P.Partial_index_scan { index = ix } ->
      if check_index st table ix then begin
        (match ix.Storage.Index.where with
        | None ->
            err st Diagnostic.Plan_partial
              (sprintf "partial-index scan over total index %s"
                 ix.Storage.Index.index_name)
        | Some _ -> ());
        check_partial_usable st env cs ix
      end
  | P.Skip_scan { index = ix } ->
      if check_index st table ix then begin
        check_partial_usable st env cs ix;
        if not catalog.Storage.Catalog.analyzed then
          err st Diagnostic.Plan_unjustified
            "skip-scan chosen without ANALYZE statistics";
        if List.length ix.Storage.Index.definition < 2 then
          err st Diagnostic.Plan_unjustified
            (sprintf "skip-scan over single-column index %s"
               ix.Storage.Index.index_name);
        let later_cols =
          List.filteri (fun i _ -> i > 0) ix.Storage.Index.definition
          |> List.filter_map (fun (ic : A.indexed_column) ->
                 match ic.A.ic_expr with
                 | A.Col { column; _ } -> Some column
                 | _ -> None)
        in
        let constrained =
          List.exists
            (fun conj ->
              match conj with
              | A.Binary (A.Eq, a, b) ->
                  List.exists
                    (fun c -> is_column_ref c a || is_column_ref c b)
                    later_cols
              | _ -> false)
            cs
        in
        if not constrained then
          err st Diagnostic.Plan_unjustified
            (sprintf
               "skip-scan over %s with no equality on a later index column"
               ix.Storage.Index.index_name)
      end
  | P.Or_union ps -> (
      let arms =
        List.find_map
          (function A.Binary (A.Or, a, b) -> Some [ a; b ] | _ -> None)
          cs
      in
      match arms with
      | None ->
          err st Diagnostic.Plan_unjustified
            "OR-union path with no OR conjunct in the WHERE clause"
      | Some arms ->
          if List.length ps <> List.length arms then
            err st Diagnostic.Plan_unjustified
              (sprintf "OR-union has %d branches for %d OR arms"
                 (List.length ps) (List.length arms))
          else
            List.iter2
              (fun p arm -> lint_path st env catalog table [ arm ] p)
              ps arms)

let lint env catalog table ~where path =
  let st = { diags = [] } in
  let cs = match where with None -> [] | Some w -> P.conjuncts w in
  lint_path st env catalog table cs path;
  List.rev st.diags
