(** Plan linter over {!Engine.Planner} access paths.

    Independently re-derives which WHERE conjunct justifies each access
    path and checks that probe keys are non-NULL and class-compatible
    with the indexed column, that the justifying conjunct's comparison
    collation equals the index key collation, that partial-index scans
    are implied by the WHERE clause under the *sound* implication rules
    only, and that every pushed-down conjunct is NULL-rejecting for the
    probed column (index scans skip NULL keys).  Paths produced by an
    injected planner bug violate one of these properties, which makes the
    linter usable as a self-check oracle. *)

val lint :
  Engine.Eval.env ->
  Storage.Catalog.t ->
  Storage.Schema.table ->
  where:Sqlast.Ast.expr option ->
  Engine.Planner.path ->
  Diagnostic.t list
(** [lint env catalog table ~where path] checks the access path the
    planner chose for a single-table scan of [table] filtered by [where].
    All diagnostics carry location ["plan"]. *)
