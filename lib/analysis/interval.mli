(** Per-column value-class and interval abstract domain.

    Seeds a domain for every column of the checked scope — which storage
    classes it may hold (NULL / numeric / text / blob) and, when numeric,
    an inclusive interval — and refines it left-to-right through the
    conjuncts of a WHERE clause.  Two checks report {!Diagnostic}
    warnings:

    - {!check_where}: a conjunct whose constraint empties its column's
      accumulated domain (the conjunction is unsatisfiable) —
      [unsat-predicate];
    - {!check_bounds}: a comparison against a literal that lies entirely
      outside the column's *declared* interval — [out-of-interval].

    Seeding is dialect-aware: sqlite columns are dynamically typed, so
    only NOT NULL is trusted there and classes/intervals start at top;
    the statically-typed dialects seed both from the declared type.
    Conjunct-driven refinement (equalities, ranges, BETWEEN, IS NULL) is
    dialect-independent.  Both checks emit warnings, never errors: the
    domain is deliberately coarse, and a flagged query is suspicious but
    not necessarily wrong. *)

open Sqlval

type t

(** Seed domains for every column of the given tables. *)
val of_tables : Dialect.t -> Typecheck.table list -> t

(** Unsatisfiable-conjunction check ([unsat-predicate] warnings). *)
val check_where :
  t -> ?loc:string -> Sqlast.Ast.expr -> Diagnostic.t list

(** Declared-interval check ([out-of-interval] warnings). *)
val check_bounds :
  t -> ?loc:string -> Sqlast.Ast.expr -> Diagnostic.t list

(** Both checks, in order. *)
val check : t -> ?loc:string -> Sqlast.Ast.expr -> Diagnostic.t list
