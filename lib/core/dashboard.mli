(** Campaign funnel dashboard: aggregate a campaign's JSONL trace into a
    live terminal view ([sqlancer top]) or a static HTML report.

    The input is the {!Campaign} trace format — one [{"type":"seed",...}]
    line per round carrying the round's frontier points and firing oracle,
    terminated by a [{"type":"campaign",...}] summary (or a
    [campaign_partial] marker).  {!feed_line} is incremental, so the
    dashboard can tail a trace that is still being written; lines it does
    not recognize are ignored, which keeps it robust against partial
    writes and future fields. *)

open Sqlval

type t

(** A fresh dashboard for a campaign against [dialect] (the dialect fixes
    the frontier universe fractions are measured against). *)
val create : dialect:Dialect.t -> t

(** Consume one trace line.  Returns [true] when the line was a
    recognized event (seed round or campaign summary). *)
val feed_line : t -> string -> bool

(** Rounds consumed so far. *)
val rounds : t -> int

(** Reports seen so far. *)
val reports : t -> int

(** The accumulated frontier. *)
val frontier : t -> Frontier.t

(** Per-oracle firing counts, descending. *)
val oracle_funnel : t -> (string * int) list

(** Mark the current moment as a rate sample: rounds per second since the
    previous call (or since creation).  Call once per redraw interval in
    live mode. *)
val sample_rate : t -> now:float -> unit

(** Render the terminal dashboard: rounds/sec, per-oracle firing funnel,
    frontier fraction, and the [stale] most-stale unexercised points.
    With [ansi] the output starts with a clear-screen sequence. *)
val render : ?ansi:bool -> ?stale:int -> t -> string

(** Render the same snapshot as a self-contained HTML report. *)
val render_html : ?stale:int -> t -> string

(** Feed a whole trace file. *)
val of_trace_file : dialect:Dialect.t -> string -> t
