open Sqlval
module A = Sqlast.Ast
module E = Engine.Errors

(* Errors any statement may produce because the generator does not track
   schema/type state precisely (paper: "generating semantically correct
   statements is sometimes impractical"). *)
let universal = [ E.No_such_table; E.No_such_column; E.Ambiguous_column ]

let value_errors dialect =
  match dialect with
  | Dialect.Sqlite_like -> [ E.Out_of_range ]
  | Dialect.Mysql_like -> [ E.Out_of_range; E.Type_error ]
  | Dialect.Postgres_like ->
      [ E.Out_of_range; E.Type_error; E.Division_by_zero ]

let expected dialect (stmt : A.stmt) : E.code list =
  let v = value_errors dialect in
  universal
  @
  match stmt with
  | A.Create_table _ -> [ E.Object_exists; E.Syntax_error ] @ v
  | A.Drop_table _ -> [ E.Txn_state (* dependent objects *) ]
  | A.Alter_table { action; _ } -> (
      match action with
      | A.Add_column _ -> [ E.Object_exists; E.Not_null_violation; E.Syntax_error ] @ v
      | A.Drop_column _ -> [ E.Syntax_error ]
      | A.Rename_column _ | A.Rename_table _ -> [ E.Object_exists ])
  | A.Create_index _ ->
      (* building a UNIQUE index over conflicting data is legitimate *)
      [ E.Object_exists; E.Unique_violation; E.Syntax_error ] @ v
  | A.Drop_index _ -> [ E.No_such_index ]
  | A.Create_view _ -> [ E.Object_exists; E.Syntax_error ] @ v
  | A.Drop_view _ -> [ E.No_such_view ]
  | A.Insert { action; _ } -> (
      match action with
      | A.On_conflict_abort ->
          [ E.Unique_violation; E.Not_null_violation; E.Check_violation;
            E.Syntax_error ]
          @ v
      | A.On_conflict_replace -> [ E.Not_null_violation; E.Check_violation ] @ v
      | A.On_conflict_ignore ->
          (* OR IGNORE swallows constraint errors (the paper's explicit
             example), but expression-index evaluation may still fail *)
          v)
  | A.Update { action; _ } -> (
      match action with
      | A.On_conflict_abort ->
          [ E.Unique_violation; E.Not_null_violation; E.Check_violation ] @ v
      | A.On_conflict_replace -> [ E.Not_null_violation; E.Check_violation ] @ v
      | A.On_conflict_ignore -> v)
  | A.Delete _ -> v
  | A.Select_stmt _ -> v
  | A.Vacuum _ -> [ E.Syntax_error ]
  | A.Reindex _ -> [ E.Syntax_error; E.No_such_index ]
  | A.Analyze _ -> []
  | A.Check_table _ | A.Repair_table _ -> [ E.Syntax_error ]
  | A.Set_option _ | A.Pragma _ -> [ E.Syntax_error ]
  | A.Create_statistics _ -> [ E.Object_exists; E.Syntax_error ]
  | A.Discard_all -> [ E.Syntax_error ]
  | A.Begin_txn | A.Commit_txn | A.Rollback_txn -> [ E.Txn_state ]
  | A.Explain _ | A.Explain_analyze _ -> [ E.Syntax_error ] @ v

let is_expected dialect stmt (err : E.t) =
  match E.severity err with
  | E.Corruption | E.Internal -> false
  | E.Ordinary -> List.exists (E.equal_code err.E.code) (expected dialect stmt)
