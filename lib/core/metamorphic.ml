open Sqlval
module A = Sqlast.Ast

type verdict = Consistent | Inconsistent of string | Skipped

(* a pure value, mergeable across runs/workers like [Stats.t]:
   [merge_stats] is associative with [empty_stats] as identity *)
type stats = {
  checks : int;
  skipped : int;
  findings : (string * A.stmt list) list;
}

let empty_stats = { checks = 0; skipped = 0; findings = [] }

let merge_stats a b =
  {
    checks = a.checks + b.checks;
    skipped = a.skipped + b.skipped;
    findings = a.findings @ b.findings;
  }

(* SELECT count-star, COUNT(c), MIN(c), MAX(c) FROM t [WHERE w] *)
let agg_query (ti : Schema_info.table_info) (c : Schema_info.column_info)
    where : A.query =
  let col = A.col c.Schema_info.ci_name in
  A.Q_select
    {
      A.sel_distinct = false;
      sel_items =
        [
          A.Sel_expr (A.Agg (A.A_count_star, None), None);
          A.Sel_expr (A.Agg (A.A_count, Some col), None);
          A.Sel_expr (A.Agg (A.A_min, Some col), None);
          A.Sel_expr (A.Agg (A.A_max, Some col), None);
        ];
      sel_from = [ A.F_table { name = ti.Schema_info.ti_name; alias = None } ];
      sel_where = where;
      sel_group_by = [];
      sel_having = None;
      sel_order_by = [];
      sel_limit = None;
      sel_offset = None;
    }

type agg_row = {
  count_star : int64;
  count_col : int64;
  min_col : Value.t;
  max_col : Value.t;
}

let read_aggs session q : agg_row option =
  match Engine.Session.query session q with
  | Ok rs -> (
      match rs.Engine.Executor.rs_rows with
      | [ [| Value.Int cs; Value.Int cc; mn; mx |] ] ->
          Some { count_star = cs; count_col = cc; min_col = mn; max_col = mx }
      | _ -> None)
  | Error _ -> None
  | exception Engine.Errors.Crash _ -> None

let check session ~rng ~(table : Schema_info.table_info) : verdict =
  match table.Schema_info.ti_columns with
  | [] -> Skipped
  | cols -> (
      let c = Rng.pick rng cols in
      let dialect = Engine.Session.dialect session in
      let pool =
        Schema_info.rows_of_table session table.Schema_info.ti_name
        |> List.concat_map Array.to_list
        |> List.filter (fun v -> not (Value.is_null v))
      in
      let p =
        Gen_expr.condition
          { Gen_expr.rng; dialect; tables = [ table ]; max_depth = 3; pool }
      in
      let whole = read_aggs session (agg_query table c None) in
      let part w = read_aggs session (agg_query table c (Some w)) in
      let p_true = part p in
      let p_false = part (A.Unary (A.Not, p)) in
      let p_null = part (A.Is { negated = false; arg = p; rhs = A.Is_null }) in
      match (whole, p_true, p_false, p_null) with
      | Some w, Some t, Some f, Some n ->
          let sum3 g = Int64.add (g t) (Int64.add (g f) (g n)) in
          let pieces = [ t; f; n ] in
          let fold_parts keep field =
            List.fold_left
              (fun acc part ->
                let v = field part in
                if Value.is_null v then acc
                else
                  match acc with
                  | None -> Some v
                  | Some best ->
                      if keep (Value.compare_total v best) then Some v
                      else Some best)
              None pieces
          in
          let cond_text = Sqlast.Sql_printer.expr dialect p in
          if sum3 (fun g -> g.count_star) <> w.count_star then
            Inconsistent
              (Printf.sprintf
                 "COUNT() partition sum %Ld <> whole-table %Ld for %s"
                 (sum3 (fun g -> g.count_star))
                 w.count_star cond_text)
          else if sum3 (fun g -> g.count_col) <> w.count_col then
            Inconsistent
              (Printf.sprintf "COUNT(%s) partitions disagree for %s"
                 c.Schema_info.ci_name cond_text)
          else if
            (not (Value.is_null w.min_col))
            && fold_parts (fun cmp -> cmp < 0) (fun g -> g.min_col)
               <> Some w.min_col
          then
            Inconsistent
              (Printf.sprintf "MIN(%s) partitions disagree for %s"
                 c.Schema_info.ci_name cond_text)
          else if
            (not (Value.is_null w.max_col))
            && fold_parts (fun cmp -> cmp > 0) (fun g -> g.max_col)
               <> Some w.max_col
          then
            Inconsistent
              (Printf.sprintf "MAX(%s) partitions disagree for %s"
                 c.Schema_info.ci_name cond_text)
          else Consistent
      | _ -> Skipped)

let run ?(seed = 1) ?(bugs = Engine.Bug.empty_set) ~max_checks dialect =
  let stats = ref empty_stats in
  let round = ref 0 in
  while !stats.checks < max_checks && !round < max 50 max_checks do
    incr round;
    let db_seed = seed + (!round * 5413) in
    let rng = Rng.make ~seed:db_seed in
    let session = Engine.Session.create ~seed:db_seed ~bugs dialect in
    let cfg = Gen_db.Config.(make dialect |> with_rng rng) in
    let log = ref [] in
    let exec stmt =
      log := stmt :: !log;
      match Engine.Session.execute session stmt with
      | Ok _ | Error _ -> ()
      | exception Engine.Errors.Crash _ -> ()
    in
    List.iter exec (Gen_db.initial_statements cfg);
    List.iter exec (Gen_db.fill_statements cfg session);
    for _ = 1 to 6 do
      List.iter exec (Gen_db.random_statements cfg session)
    done;
    let tables = Schema_info.tables_of_session session in
    List.iter
      (fun table ->
        if !stats.checks < max_checks then
          let one =
            match check session ~rng ~table with
            | Consistent -> { empty_stats with checks = 1 }
            | Skipped -> { empty_stats with checks = 1; skipped = 1 }
            | Inconsistent msg ->
                { checks = 1; skipped = 0; findings = [ (msg, List.rev !log) ] }
          in
          stats := merge_stats !stats one)
      tables
  done;
  !stats
