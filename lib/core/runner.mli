(** The PQS main loop (paper Figure 1).

    Each database round: generate a random database (step 1), then for a
    number of pivot choices (step 2) synthesize rectified queries (steps
    3–5), run them on the engine (step 6) and check containment (step 7).
    Which checks count as findings is decided by the pluggable {!Oracle}
    set in the config; the paper's error/crash/containment trio is the
    default.  Workers on distinct databases are independent {!run_round}
    calls with distinct seeds (paper Section 3.4's thread-per-database
    parallelization); {!Campaign} orchestrates them across domains. *)

(** Immutable run configuration, built with labelled optional arguments:

    {[
      let config =
        Runner.Config.make ~seed:7 ~bugs ~max_rows:10 Dialect.Sqlite_like
    ]} *)
module Config : sig
  type t = private {
    dialect : Sqlval.Dialect.t;
    bugs : Engine.Bug.set;
    seed : int;
    table_count : int;
    max_rows : int;
    extra_statements : int;
    pivots_per_db : int;
    queries_per_pivot : int;
    max_depth : int;  (** expression depth bound (paper Algorithm 1) *)
    check_expressions : bool;  (** expressions-on-columns extension *)
    verify_ground_truth : bool;
        (** replay containment findings on a correct engine before
            reporting (guards against oracle imprecision; counts as false
            positive) *)
    rectify : bool;  (** disable only for the no-rectification ablation *)
    coverage : Engine.Coverage.t option;
        (** engine feature-coverage instrumentation (Table 4) *)
    check_non_containment : bool;
        (** also issue rectified-to-FALSE queries and require the pivot row
            to be absent — the paper's Section 7 future-work variant, which
            additionally catches defects that wrongly *include* rows *)
    oracles : Oracle.t list;  (** consulted in order; first report wins *)
    telemetry : Telemetry.t;
        (** metrics registry for phase spans and counters;
            {!Telemetry.noop} (zero-cost) by default.  Recording never
            draws randomness or changes control flow, so enabling it is
            campaign-neutral. *)
    trace : bool;
        (** flight-record every round into a ring buffer even when no
            oracle fires; implied by [bundle_dir] / [trace_sample].  Like
            telemetry, tracing is campaign-neutral (asserted by
            [make trace]). *)
    trace_capacity : int;  (** ring size in events (default 1024) *)
    bundle_dir : string option;
        (** when set, every oracle finding drains the flight recorder into
            a self-contained repro bundle
            [<dir>/bundle-<seed>-<oracle>/{repro.sql,bundle.json,trace.json}]
            and the report's [bundle] field points at the [repro.sql] *)
    trace_sample : int;
        (** with [bundle_dir]: also write [round-<seed>-trace.json] for
            every Nth healthy round (0 = off) — baseline traces to compare
            failing rounds against *)
    backend : Engine.Exec_backend.kind;
        (** execution backend of the campaign's test sessions (default
            [Interpreted]); also forwarded to the rectifier, so under
            [Compiled] pivot containment checks compile each condition
            once.  Ground-truth confirmation always re-runs findings on
            the interpreted reference engine, keeping the two backends
            mutually checking. *)
    guided : bool;
        (** coverage-guided generation: each pivot's queries aim at a cold
            point of the accumulated frontier ({!Gen_bias.plan}) instead of
            sampling clause shapes blind.  Guidance draws from a private
            RNG stream, so it changes the sampling distribution without
            perturbing the synthesis stream's determinism per seed. *)
  }

  val make :
    ?bugs:Engine.Bug.set ->
    ?seed:int ->
    ?table_count:int ->
    ?max_rows:int ->
    ?extra_statements:int ->
    ?pivots_per_db:int ->
    ?queries_per_pivot:int ->
    ?max_depth:int ->
    ?check_expressions:bool ->
    ?verify_ground_truth:bool ->
    ?rectify:bool ->
    ?coverage:Engine.Coverage.t ->
    ?check_non_containment:bool ->
    ?oracles:Oracle.t list ->
    ?telemetry:Telemetry.t ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?bundle_dir:string ->
    ?trace_sample:int ->
    ?backend:Engine.Exec_backend.kind ->
    ?guided:bool ->
    Sqlval.Dialect.t ->
    t

  (** Rebind the base seed (e.g. per worker). *)
  val with_seed : int -> t -> t

  (** Toggle coverage-guided generation. *)
  val with_guided : bool -> t -> t

  (** Select the execution backend. *)
  val with_backend : Engine.Exec_backend.kind -> t -> t

  (** Swap the oracle set. *)
  val with_oracles : Oracle.t list -> t -> t

  (** Attach (or detach) a coverage instrument — campaigns give each
      worker its own and merge afterwards. *)
  val with_coverage : Engine.Coverage.t option -> t -> t

  (** Swap the telemetry registry — campaigns give each worker its own
      and merge afterwards, like coverage. *)
  val with_telemetry : Telemetry.t -> t -> t

  (** Toggle always-on flight recording. *)
  val with_trace : bool -> t -> t

  (** Point repro-bundle output at a directory (or disable with [None]). *)
  val with_bundle_dir : string option -> t -> t

  (** Set the healthy-round trace sampling period (0 = off). *)
  val with_trace_sample : int -> t -> t
end

type config = Config.t

type stats = Stats.t
(** Alias kept for readability of older call sites; see {!Stats}. *)

(** The flight recorder a round under [config] needs: a ring buffer when
    tracing, bundle output or trace sampling is on, {!Trace.noop}
    otherwise.  Long-running drivers should create one per worker and
    thread it through {!run_round} so the ring is allocated once and
    recycled by [Trace.begin_round], instead of churning a fresh array
    every round. *)
val recorder_for : config -> Trace.t

(** Run one complete database round on a fresh session seeded with
    [db_seed]: generation, pivots and containment checks.  Returns the
    round's statistics; the round stops at its first finding, so
    [(run_round c ~db_seed).reports] has at most one element.  This is the
    deterministic unit of work campaigns shard across workers: the result
    depends only on [config] and [db_seed].  [recorder] supplies a reused
    flight recorder (see {!recorder_for}); when omitted the round creates
    its own.  Recording never changes the round's outcome.

    [bias] is the guided-generation state: a frontier accumulated across
    rounds that shape planning reads and each round extends (only read
    when [Config.guided]; a fresh local one is used when omitted).  The
    round's own frontier — query fingerprints plus the round's
    planner-path coverage deltas — is returned in [Stats.frontier]
    regardless of guidance. *)
val run_round :
  ?recorder:Trace.t -> ?bias:Frontier.t ref -> config -> db_seed:int -> Stats.t

(** Run rounds until [max_queries] containment checks were issued or a
    finding occurred [stop_on_first] (database seeds derive from
    [Config.seed]). *)
val run : ?stop_on_first:bool -> max_queries:int -> config -> Stats.t

(** Convenience for the evaluation: hunt for the first finding within a
    query budget. *)
val hunt : config -> max_queries:int -> Bug_report.t option

(** Budget-splitting parallel variant of {!run}: [workers] domains, each
    hunting on its own databases with an independent seed stream.  Results
    are merged with {!Stats.merge} in worker order (deterministic).  For
    seed-range sharding with per-seed accounting and traces, prefer
    {!Campaign.run}. *)
val run_parallel :
  ?stop_on_first:bool -> workers:int -> max_queries:int -> config -> Stats.t
