(** The plan-space differential oracle.

    PQS validates one execution per query; planner defects that only fire
    under a particular access path escape it unless the default plan
    happens to take that path.  This oracle checks every synthesized
    SELECT under each enumerable plan ({!Engine.Planner.enumerate} plus
    forced join orders, via {!Engine.Session.query_forced}) and
    cross-checks the result multisets.  On a correct engine every
    enumerated path is a sound superset of the matching rows and the
    executor re-applies the full WHERE filter, so any divergence is a bug
    by construction.

    Each scan or join site is compared through a minimal witness query —
    [SELECT (DISTINCT) * FROM site WHERE site-where] — rather than by
    re-running the whole SELECT per plan: the projections, sorts,
    compound arms and subqueries around a scan are plan-invariant, and
    the witness keeps the oracle's campaign overhead within its budget.
    Witnesses carry no LIMIT/GROUP BY/ORDER BY, so their results are
    scan-order-insensitive by construction; multisets are canonicalized
    under {!Engine.Executor.row_key}, the same row identity the engine's
    own DISTINCT/compound dedup uses, so value-representation coarseness
    can never produce a false positive. *)

open Sqlval

(** Is the query's result multiset independent of scan order, making a
    cross-plan comparison sound?  Exposed for the property tests. *)
val query_stable : Sqlast.Ast.query -> bool

(** All forced-plan variants of the query worth comparing against its
    default execution: the join-order swap (when a swappable join is
    present), then one {!Engine.Executor.forced} per (single-table scan
    site, enumerated path other than the planner's default choice), capped
    at [max_plans] (default 4).  Empty when the query is not
    {!query_stable}.  Deterministic: no randomness is drawn. *)
val enumerate_forced :
  ?max_plans:int ->
  Engine.Session.t ->
  Sqlast.Ast.query ->
  Engine.Executor.forced list

(** One cross-plan disagreement. *)
type divergence = {
  dv_witness : string;
      (** SQL of the minimal witness query both plans ran *)
  dv_forced : Engine.Executor.forced;  (** the disagreeing plan *)
  dv_default_rows : int;
  dv_forced_rows : int;
  dv_cardinalities : (string * int) list;
      (** per-plan row counts on the witness, default first; [-1] marks a
          plan whose execution errored *)
  dv_default_plan : string list;  (** annotated EXPLAIN, default plan *)
  dv_forced_plan : string list;  (** annotated EXPLAIN, forced plan *)
}

type outcome = {
  oc_plans : int;  (** forced plans executed *)
  oc_divergence : divergence option;  (** first disagreement, if any *)
}

val no_outcome : outcome

(** The one-line report message carried by the {!Bug_report.Plan_diff}
    bug report: witness SQL, forced-plan label, both cardinalities, the
    full per-plan cardinality list and both annotated plans. *)
val message : divergence -> string

(** Run the differential check for one query.  A containment check
    [VALUES (pivot) INTERSECT q] is unwrapped to [q] first (the INTERSECT
    would mask divergences away from the pivot row).  Each scan site of
    the query yields a minimal witness query, executed once under the
    default plan and once under each forced plan; the first disagreeing
    witness is reported.  All executions go through
    {!Engine.Session.query_forced} — no statement counting, no coverage,
    no randomness.  Plans that error or hit the simulated SEGFAULT are
    recorded with cardinality [-1] and skipped for comparison. *)
val check_query :
  ?max_plans:int -> Engine.Session.t -> Sqlast.Ast.query -> outcome

(** The join-order differential: compare
    [SELECT * FROM a AS pd_l, b AS pd_r] under the default and the
    swapped join order, over up to [max_pairs] (default 2) consecutive
    catalog table pairs (a self-join when the catalog has one table).
    Join-order agreement is a property of the join machinery and the
    stored data, not of the surrounding query, so the oracle runs this
    once per database rather than once per synthesized query. *)
val check_join_orders : ?max_pairs:int -> Engine.Session.t -> outcome

(** The oracle: runs {!check_query} on every [Containment_check] event
    and {!check_join_orders} on [Database_ready], times itself under
    {!Telemetry.Phase.Plan_diff}, and counts
    [pqs_plans_enumerated_total] / [pqs_plan_divergences_total].
    Campaign-neutral by construction (see {!Engine.Session.query_forced});
    append it after [Oracle.defaults] so the paper's oracles keep report
    priority. *)
val oracle : ?max_plans:int -> unit -> Oracle.t

(** {1 Seed-corpus sweep} ([make plandiff] / [sqlancer plan-diff] /
    the detection tests) *)

type sweep_result = {
  pd_seeds : int;
  pd_queries : int;  (** synthesized queries checked *)
  pd_plans : int;  (** forced plans executed *)
  pd_containment_seeds : int list;
      (** seeds on which the containment check itself failed (pivot row
          missing), ascending and deduplicated *)
  pd_divergences : (int * string) list;
      (** every plan divergence, tagged with its seed *)
}

(** Generate a small database and [queries_per_seed] pivoted queries per
    seed (the {!Lint.sweep} corpus recipe) and run {!check_query} on each,
    also recording whether the plain containment check would have fired —
    the data behind the per-oracle detection matrix. *)
val sweep :
  ?queries_per_seed:int ->
  ?max_plans:int ->
  ?bugs:Engine.Bug.set ->
  seed_lo:int ->
  seed_hi:int ->
  Dialect.t ->
  sweep_result

(** Seeds with a plan divergence but no containment failure: the bug
    classes only the plan-space oracle surfaces. *)
val exclusive_seeds : sweep_result -> int list
