open Sqlval
module A = Sqlast.Ast

module Config = struct
  type t = {
    rng : Rng.t;
    dialect : Dialect.t;
    table_count : int;
    max_columns : int;
    min_rows : int;
    max_rows : int;
    extra_statements : int;
  }

  let make ?(seed = 1) dialect =
    {
      rng = Rng.make ~seed;
      dialect;
      table_count = 2;
      max_columns = 3;
      min_rows = 1;
      max_rows = 6;
      extra_statements = 8;
    }

  let with_rng rng t = { t with rng }
  let with_table_count table_count t = { t with table_count }
  let with_max_columns max_columns t = { t with max_columns }
  let with_min_rows min_rows t = { t with min_rows }
  let with_max_rows max_rows t = { t with max_rows }
  let with_extra_statements extra_statements t = { t with extra_statements }
end

type config = Config.t

open Config

let is_sqlite cfg = Dialect.equal cfg.dialect Dialect.Sqlite_like
let is_mysql cfg = Dialect.equal cfg.dialect Dialect.Mysql_like
let is_pg cfg = Dialect.equal cfg.dialect Dialect.Postgres_like

(* ------------------------------------------------------------------ *)
(* CREATE TABLE                                                         *)

let random_type cfg : Datatype.t =
  let rng = cfg.rng in
  match cfg.dialect with
  | Dialect.Sqlite_like ->
      Rng.pick_weighted rng
        [
          (4, Datatype.Any);
          (3, Datatype.Int { width = Datatype.Regular; unsigned = false });
          (3, Datatype.Text);
          (1, Datatype.Real);
          (1, Datatype.Blob);
        ]
  | Dialect.Mysql_like ->
      let width =
        Rng.pick rng Datatype.[ Tiny; Small; Medium; Regular; Big ]
      in
      Rng.pick_weighted rng
        [
          (3, Datatype.Int { width; unsigned = false });
          (2, Datatype.Int { width; unsigned = true });
          (3, Datatype.Text);
          (1, Datatype.Real);
          (1, Datatype.Blob);
          (1, Datatype.Bool);
        ]
  | Dialect.Postgres_like ->
      let width = Rng.pick rng Datatype.[ Small; Regular; Big ] in
      Rng.pick_weighted rng
        [
          (4, Datatype.Int { width; unsigned = false });
          (1, Datatype.Serial);
          (3, Datatype.Text);
          (1, Datatype.Real);
          (2, Datatype.Bool);
          (1, Datatype.Blob);
        ]

let random_collation cfg (ty : Datatype.t) =
  (* collations matter for text comparisons; sqlite is where the paper
     exercised them *)
  if not (is_sqlite cfg) then None
  else
    match ty with
    | Datatype.Text | Datatype.Any ->
        if Rng.chance cfg.rng 0.4 then
          Some (Rng.pick cfg.rng [ Collation.Nocase; Collation.Rtrim ])
        else None
    | Datatype.Int _ ->
        (* sqlite permits collations on any column; paper Listing 7 uses
           "c0 INT UNIQUE COLLATE NOCASE" *)
        if Rng.chance cfg.rng 0.2 then Some Collation.Nocase else None
    | _ -> None

let create_table_def cfg ~name ~inherit_from : A.create_table =
  let rng = cfg.rng in
  let ncols = Rng.int_in rng 1 cfg.max_columns in
  let mk_col i =
    let ty = random_type cfg in
    let constraints = ref [] in
    if Rng.chance rng 0.12 then constraints := A.C_not_null :: !constraints;
    if Rng.chance rng 0.18 then constraints := A.C_unique :: !constraints;
    if Rng.chance rng 0.12 then
      constraints :=
        A.C_default (A.Lit (Gen_expr.literal_for_column rng cfg.dialect ty))
        :: !constraints;
    (* lenient CHECK constraints: NULL passes, and the excluded literal is
       rarely generated, so inserts mostly succeed *)
    if Rng.chance rng 0.1 then begin
      let name = Printf.sprintf "c%d" i in
      let excluded = Gen_expr.literal_for_column rng cfg.dialect ty in
      constraints :=
        A.C_check (A.Binary (A.Neq, A.col name, A.Lit excluded)) :: !constraints
    end;
    {
      A.col_name = Printf.sprintf "c%d" i;
      col_type = ty;
      col_collate = random_collation cfg ty;
      col_constraints = !constraints;
    }
  in
  let columns = List.init ncols mk_col in
  (* primary key: single column or composite table constraint *)
  let pk_col = Rng.chance rng 0.35 in
  let columns, constraints =
    if pk_col then
      let idx = Rng.int rng ncols in
      ( List.mapi
          (fun i c ->
            if i = idx then
              { c with A.col_constraints = A.C_primary_key :: c.A.col_constraints }
            else c)
          columns,
        [] )
    else if ncols >= 2 && Rng.chance rng 0.2 then
      let cols = Rng.sample rng 2 (List.map (fun c -> c.A.col_name) columns) in
      (columns, [ A.T_primary_key cols ])
    else (columns, [])
  in
  let has_pk = pk_col || constraints <> [] in
  let without_rowid = is_sqlite cfg && has_pk && Rng.chance rng 0.35 in
  let engine =
    if not (is_mysql cfg) then None
    else
      Rng.pick_weighted rng
        [
          (5, None);
          (1, Some A.E_innodb);
          (2, Some A.E_memory);
          (1, Some A.E_myisam);
          (1, Some A.E_csv);
        ]
  in
  {
    A.ct_name = name;
    ct_if_not_exists = false;
    ct_columns = columns;
    ct_constraints = constraints;
    ct_without_rowid = without_rowid;
    ct_engine = engine;
    ct_inherits = inherit_from;
  }

let initial_statements cfg =
  let rec build i parents acc =
    if i > cfg.table_count then List.rev acc
    else
      let name = Printf.sprintf "t%d" (i - 1) in
      let inherit_from =
        if is_pg cfg && parents <> [] && Rng.chance cfg.rng 0.4 then
          Some (Rng.pick cfg.rng parents)
        else None
      in
      let ct = create_table_def cfg ~name ~inherit_from in
      build (i + 1) (name :: parents) (A.Create_table ct :: acc)
  in
  build 1 [] []

(* ------------------------------------------------------------------ *)
(* INSERT                                                               *)

let insert_stmt ?(existing_rows = []) cfg (ti : Schema_info.table_info) :
    A.stmt =
  let rng = cfg.rng in
  let cols = ti.Schema_info.ti_columns in
  (* use an explicit column subset half of the time *)
  let chosen =
    if Rng.chance rng 0.5 then cols
    else
      let k = Rng.int_in rng 1 (List.length cols) in
      let sampled = Rng.sample rng k cols in
      (* keep schema order *)
      List.filter (fun c -> List.memq c sampled) cols
  in
  let chosen = if chosen = [] then cols else chosen in
  let nrows = Rng.int_in rng 1 3 in
  let fresh_row () =
    List.map
      (fun (c : Schema_info.column_info) ->
        A.Lit (Gen_expr.literal_for_column rng cfg.dialect c.Schema_info.ci_type))
      chosen
  in
  let row _ =
    (* occasionally clone an existing row (mutating one column): near
       duplicates exercise DISTINCT, GROUP BY and unique-index paths *)
    match existing_rows with
    | (r : Value.t array) :: _
      when List.length chosen = List.length cols
           && Array.length r = List.length cols
           && Rng.chance rng 0.3 ->
        let r =
          if List.length existing_rows > 1 then Rng.pick rng existing_rows
          else r
        in
        if Array.length r <> List.length cols then fresh_row ()
        else
          let mutate_at =
            if Rng.chance rng 0.6 then Some (Rng.int rng (Array.length r))
            else None
          in
          List.mapi
            (fun i (c : Schema_info.column_info) ->
              if mutate_at = Some i then
                A.Lit
                  (Gen_expr.literal_for_column rng cfg.dialect
                     c.Schema_info.ci_type)
              else A.Lit r.(i))
            cols
    | _ -> fresh_row ()
  in
  let action =
    Rng.pick_weighted rng
      [
        (7, A.On_conflict_abort);
        (2, A.On_conflict_ignore);
        (if is_pg cfg then 0 else 2), A.On_conflict_replace;
      ]
  in
  A.Insert
    {
      table = ti.Schema_info.ti_name;
      columns =
        (if List.length chosen = List.length cols && Rng.bool rng then []
         else List.map (fun c -> c.Schema_info.ci_name) chosen);
      rows = List.init nrows row;
      action;
    }

let fill_statements cfg session =
  Schema_info.tables_of_session session
  |> List.concat_map (fun (ti : Schema_info.table_info) ->
         let missing = cfg.min_rows - ti.Schema_info.ti_row_count in
         if missing <= 0 then []
         else List.init missing (fun _ -> insert_stmt cfg ti))

(* ------------------------------------------------------------------ *)
(* Other statements                                                     *)

let table_pool session (ti : Schema_info.table_info) =
  Schema_info.rows_of_table session ti.Schema_info.ti_name
  |> List.concat_map Array.to_list
  |> List.filter (fun v -> not (Value.is_null v))

let update_stmt cfg (ti : Schema_info.table_info) session : A.stmt =
  let rng = cfg.rng in
  let pool = table_pool session ti in
  let c = Rng.pick rng ti.Schema_info.ti_columns in
  let value =
    (* half of the time assign an existing value, provoking conflicts the
       way the paper's OR REPLACE findings need *)
    match pool with
    | v :: _ when Rng.chance rng 0.35 ->
        let v = if List.length pool > 1 then Rng.pick rng pool else v in
        A.Lit v
    | _ ->
        A.Lit (Gen_expr.literal_for_column rng cfg.dialect c.Schema_info.ci_type)
  in
  let where =
    if Rng.chance rng 0.75 then
      Some
        (Gen_expr.condition
           {
             Gen_expr.rng;
             dialect = cfg.dialect;
             tables = [ ti ];
             max_depth = 2;
             pool;
           })
    else None
  in
  let action =
    if is_sqlite cfg then
      Rng.pick_weighted rng
        [
          (7, A.On_conflict_abort);
          (1, A.On_conflict_ignore);
          (2, A.On_conflict_replace);
        ]
    else A.On_conflict_abort
  in
  A.Update
    {
      table = ti.Schema_info.ti_name;
      assignments = [ (c.Schema_info.ci_name, value) ];
      where;
      action;
    }

let delete_stmt cfg (ti : Schema_info.table_info) session : A.stmt =
  let where =
    Some
      (Gen_expr.condition
         {
           Gen_expr.rng = cfg.rng;
           dialect = cfg.dialect;
           tables = [ ti ];
           max_depth = 2;
           pool = table_pool session ti;
         })
  in
  A.Delete { table = ti.Schema_info.ti_name; where }

let index_expr cfg (ti : Schema_info.table_info) : A.expr =
  let rng = cfg.rng in
  let col () =
    let c = Rng.pick rng ti.Schema_info.ti_columns in
    A.col c.Schema_info.ci_name
  in
  (* postgres type-checks index expressions: arithmetic only over numeric
     columns there *)
  let numeric_col () =
    let numeric =
      List.filter
        (fun (c : Schema_info.column_info) ->
          match c.Schema_info.ci_type with
          | Datatype.Int _ | Datatype.Serial | Datatype.Real -> true
          | Datatype.Any -> not (is_pg cfg)
          | _ -> not (is_pg cfg) && not (is_mysql cfg))
        ti.Schema_info.ti_columns
    in
    match numeric with
    | [] -> None
    | cs -> Some (A.col (Rng.pick rng cs).Schema_info.ci_name)
  in
  let arith mk =
    match numeric_col () with Some c -> mk c | None -> col ()
  in
  Rng.pick_weighted rng
    [
      (6, col ());
      (1, arith (fun c -> A.Binary (A.Add, c, A.int_lit 1L)));
      (1, arith (fun c -> A.Binary (A.Add, A.int_lit 1L, c)));
      ( (if is_sqlite cfg then 2 else 0),
        A.Like
          { negated = false; arg = col (); pattern = A.text_lit ""; escape = None } );
      ((if is_sqlite cfg then 1 else 0), A.Binary (A.Concat, col (), A.int_lit 1L));
      (1, A.int_lit 1L);
    ]

let create_index_stmt cfg (ti : Schema_info.table_info) ~name : A.stmt =
  let rng = cfg.rng in
  let one () =
    let e = index_expr cfg ti in
    let coll =
      if is_sqlite cfg && Rng.chance rng 0.3 then
        Some (Rng.pick rng [ Collation.Nocase; Collation.Rtrim; Collation.Binary ])
      else None
    in
    { A.ic_expr = e; ic_collate = coll; ic_desc = Rng.chance rng 0.3 }
  in
  let ncols = Rng.pick_weighted rng [ (5, 1); (4, 2) ] in
  let columns = List.init ncols (fun _ -> one ()) in
  let where =
    if (is_sqlite cfg || is_pg cfg) && Rng.chance rng 0.35 then
      let c = Rng.pick rng ti.Schema_info.ti_columns in
      let cref = A.col c.Schema_info.ci_name in
      Some
        (Rng.pick_weighted rng
           [
             (4, A.Is { negated = true; arg = cref; rhs = A.Is_null });
             ( 2,
               A.Binary
                 ( A.Gt,
                   cref,
                   A.Lit
                     (Gen_expr.literal_for_column rng cfg.dialect
                        c.Schema_info.ci_type) ) );
           ])
    else None
  in
  (* postgres WHERE must be boolean: the Gt form above can mismatch types;
     restrict pg partial predicates to IS NOT NULL *)
  let where =
    match (where, cfg.dialect) with
    | Some (A.Binary (A.Gt, cref, A.Lit lit)), Dialect.Postgres_like ->
        if Value.is_null lit then
          Some (A.Is { negated = true; arg = cref; rhs = A.Is_null })
        else Some (A.Binary (A.Gt, cref, A.Lit lit))
    | w, _ -> w
  in
  A.Create_index
    {
      A.ci_name = name;
      ci_if_not_exists = false;
      ci_table = ti.Schema_info.ti_name;
      ci_unique = Rng.chance rng 0.3;
      ci_columns = columns;
      ci_where = where;
    }

let view_stmt cfg (ti : Schema_info.table_info) ~name : A.stmt =
  let rng = cfg.rng in
  let items =
    if Rng.bool rng then [ A.Star ]
    else
      List.map
        (fun (c : Schema_info.column_info) ->
          A.Sel_expr (A.col c.Schema_info.ci_name, None))
        ti.Schema_info.ti_columns
  in
  let q =
    A.Q_select
      {
        A.sel_distinct = Rng.chance rng 0.5;
        sel_items = items;
        sel_from = [ A.F_table { name = ti.Schema_info.ti_name; alias = None } ];
        sel_where = None;
        sel_group_by = [];
        sel_having = None;
        sel_order_by = [];
        sel_limit = None;
        sel_offset = None;
      }
  in
  A.Create_view { name; query = q }

let option_stmt cfg : A.stmt =
  let rng = cfg.rng in
  match cfg.dialect with
  | Dialect.Sqlite_like ->
      let name, value =
        Rng.pick_weighted rng
          [
            (4, ("case_sensitive_like", Value.Int (Int64.of_int (Rng.int rng 2))));
            (1, ("reverse_unordered_selects", Value.Int 0L));
            (1, ("cell_size_check", Value.Int (Int64.of_int (Rng.int rng 2))));
            (1, ("legacy_file_format", Value.Int 0L));
          ]
      in
      A.Pragma { name; value = Some value }
  | Dialect.Mysql_like ->
      let name, value =
        Rng.pick rng
          [
            ("key_cache_division_limit", Value.Int (Int64.of_int (Rng.int_in rng 1 100)));
            ("sort_buffer_size", Value.Int 262144L);
            ("max_heap_table_size", Value.Int 16777216L);
          ]
      in
      A.Set_option { global = Rng.bool rng; name; value }
  | Dialect.Postgres_like ->
      let name, value =
        Rng.pick rng
          [
            ("enable_seqscan", Value.Bool (Rng.bool rng));
            ("enable_indexscan", Value.Bool (Rng.bool rng));
            ("work_mem", Value.Int (Int64.of_int (Rng.int_in rng 64 8192)));
          ]
      in
      A.Set_option { global = false; name; value }

let maintenance_stmt cfg session : A.stmt =
  let rng = cfg.rng in
  let tables = Schema_info.tables_of_session session in
  let table () =
    match tables with
    | [] -> "t0"
    | ts -> (Rng.pick rng ts).Schema_info.ti_name
  in
  match cfg.dialect with
  | Dialect.Sqlite_like ->
      Rng.pick_weighted rng
        [
          (3, A.Vacuum { full = false });
          (3, A.Reindex None);
          (2, A.Analyze (Some (table ())));
          (2, A.Analyze None);
        ]
  | Dialect.Mysql_like ->
      Rng.pick_weighted rng
        [
          (3, A.Check_table { table = table (); for_upgrade = Rng.chance rng 0.4 });
          (3, A.Repair_table (table ()));
          (2, A.Analyze (Some (table ())));
        ]
  | Dialect.Postgres_like ->
      Rng.pick_weighted rng
        [
          (2, A.Vacuum { full = false });
          (2, A.Vacuum { full = true });
          (2, A.Reindex None);
          (3, A.Analyze None);
          (1, A.Discard_all);
        ]

let alter_stmt cfg (ti : Schema_info.table_info) : A.stmt =
  let rng = cfg.rng in
  let col () = (Rng.pick rng ti.Schema_info.ti_columns).Schema_info.ci_name in
  let fresh = Rng.identifier rng ~prefix:"c" in
  let action =
    Rng.pick_weighted rng
      [
        (4, A.Rename_column { old_name = col (); new_name = fresh });
        ( 3,
          A.Add_column
            {
              A.col_name = fresh;
              col_type = random_type cfg;
              col_collate = None;
              col_constraints = [];
            } );
        (1, A.Drop_column (col ()));
      ]
  in
  A.Alter_table { table = ti.Schema_info.ti_name; action }

let stats_stmt cfg (ti : Schema_info.table_info) ~name : A.stmt option =
  if List.length ti.Schema_info.ti_columns < 2 then None
  else
    let cols =
      Rng.sample cfg.rng 2
        (List.map (fun c -> c.Schema_info.ci_name) ti.Schema_info.ti_columns)
    in
    Some (A.Create_statistics { name; table = ti.Schema_info.ti_name; columns = cols })

(* ------------------------------------------------------------------ *)

let random_statements cfg session : A.stmt list =
  let rng = cfg.rng in
  let tables = Schema_info.tables_of_session session in
  match tables with
  | [] -> []
  | _ -> (
      let ti = Rng.pick rng tables in
      match
        Rng.pick_weighted rng
          [
            (8, `Insert);
            (4, `Update);
            (2, `Delete);
            (6, `Index);
            (2, `View);
            (3, `Option);
            (3, `Maintenance);
            (2, `Alter);
            ((if is_pg cfg then 2 else 0), `Stats);
            (1, `Txn);
            (1, `Drop_index);
          ]
      with
      | `Insert ->
          [
            insert_stmt
              ~existing_rows:
                (Schema_info.rows_of_table session ti.Schema_info.ti_name)
              cfg ti;
          ]
      | `Update -> [ update_stmt cfg ti session ]
      | `Delete -> [ delete_stmt cfg ti session ]
      | `Index ->
          let ci = create_index_stmt cfg ti ~name:(Rng.identifier rng ~prefix:"i") in
          (* stats invite the planner's skip-scan (paper Listing 6 pairs
             CREATE INDEX with ANALYZE) *)
          if Rng.chance rng 0.4 then [ ci; A.Analyze None ] else [ ci ]
      | `View -> [ view_stmt cfg ti ~name:(Rng.identifier rng ~prefix:"v") ]
      | `Option -> [ option_stmt cfg ]
      | `Maintenance -> [ maintenance_stmt cfg session ]
      | `Alter -> [ alter_stmt cfg ti ]
      | `Stats -> (
          match stats_stmt cfg ti ~name:(Rng.identifier rng ~prefix:"s") with
          | Some s -> [ s ]
          | None -> [ insert_stmt cfg ti ])
      | `Txn ->
          let inner = insert_stmt cfg ti in
          let closing = if Rng.chance rng 0.5 then A.Commit_txn else A.Rollback_txn in
          [ A.Begin_txn; inner; closing ]
      | `Drop_index -> (
          match Schema_info.index_names_of_session session with
          | [] -> [ insert_stmt cfg ti ]
          | names -> [ A.Drop_index { if_exists = false; name = Rng.pick rng names } ]))
