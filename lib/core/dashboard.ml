open Sqlval

(* ------------------------------------------------------------------ *)
(* Flat-JSON field extraction.  The trace is our own machine-written
   format: one object per line, string values without embedded quotes,
   at most one level of array nesting ("points").  A targeted scanner
   keeps the dashboard dependency-free and tolerant of unknown fields. *)

let find_raw line key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and len = String.length line in
  let rec search i =
    if i + nlen > len then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
      let stop =
        match line.[start] with
        | '[' ->
            let rec close j =
              if j >= len then len else if line.[j] = ']' then j + 1 else close (j + 1)
            in
            close start
        | '"' ->
            let rec close j =
              if j >= len then len else if line.[j] = '"' then j + 1 else close (j + 1)
            in
            close (start + 1)
        | _ ->
            let rec scan j =
              if j >= len || line.[j] = ',' || line.[j] = '}' then j
              else scan (j + 1)
            in
            scan start
      in
      Some (String.sub line start (stop - start))

let find_int line key =
  Option.bind (find_raw line key) (fun s -> int_of_string_opt (String.trim s))

let find_float line key =
  Option.bind (find_raw line key) (fun s -> float_of_string_opt (String.trim s))

let find_str line key =
  match find_raw line key with
  | Some s when String.length s >= 2 && s.[0] = '"' ->
      Some (String.sub s 1 (String.length s - 2))
  | _ -> None

let find_str_list line key =
  match find_raw line key with
  | Some s when String.length s >= 2 && s.[0] = '[' ->
      let inner = String.sub s 1 (String.length s - 2) in
      String.split_on_char ',' inner
      |> List.filter_map (fun item ->
             let item = String.trim item in
             if String.length item >= 2 && item.[0] = '"' then
               Some (String.sub item 1 (String.length item - 2))
             else None)
  | _ -> []

(* ------------------------------------------------------------------ *)

type t = {
  dialect : Dialect.t;
  universe : string list;
  mutable rounds : int;
  mutable statements : int;
  mutable queries : int;
  mutable pivots : int;
  mutable reports : int;
  mutable wall_ms : float;  (** summed per-round wall time *)
  mutable workers : int list;
  mutable oracle_counts : (string * int) list;
  mutable frontier : Frontier.t;
  mutable summary_wall_s : float option;
  mutable summary_sps : float option;
  (* live rate sampling *)
  mutable rate_rounds : int;
  mutable rate_time : float option;
  mutable rate : float option;
}

let create ~dialect =
  {
    dialect;
    universe = Gen_bias.universe dialect;
    rounds = 0;
    statements = 0;
    queries = 0;
    pivots = 0;
    reports = 0;
    wall_ms = 0.0;
    workers = [];
    oracle_counts = [];
    frontier = Frontier.empty;
    summary_wall_s = None;
    summary_sps = None;
    rate_rounds = 0;
    rate_time = None;
    rate = None;
  }

let bump_oracle t name =
  let rec go = function
    | [] -> [ (name, 1) ]
    | (n, c) :: rest when String.equal n name -> (n, c + 1) :: rest
    | x :: rest -> x :: go rest
  in
  t.oracle_counts <- go t.oracle_counts

let feed_seed t line =
  let get key = Option.value ~default:0 (find_int line key) in
  t.rounds <- t.rounds + 1;
  t.statements <- t.statements + get "statements";
  t.queries <- t.queries + get "queries";
  t.pivots <- t.pivots + get "pivots";
  t.reports <- t.reports + get "reports";
  t.wall_ms <- t.wall_ms +. Option.value ~default:0.0 (find_float line "wall_ms");
  (match find_int line "worker" with
  | Some w when not (List.mem w t.workers) -> t.workers <- w :: t.workers
  | _ -> ());
  (match find_str line "oracle" with
  | Some o -> bump_oracle t o
  | None -> ());
  let seed = Option.value ~default:0 (find_int line "seed") in
  match find_str_list line "points" with
  | [] -> ()
  | points ->
      t.frontier <- Frontier.union t.frontier (Frontier.of_points ~seed points)

let feed_summary t line =
  t.summary_wall_s <- find_float line "wall_s";
  t.summary_sps <- find_float line "statements_per_sec"

let feed_line t line =
  match find_str line "type" with
  | Some "seed" ->
      feed_seed t line;
      true
  | Some "campaign" ->
      feed_summary t line;
      true
  | _ -> false

let rounds t = t.rounds
let reports t = t.reports
let frontier t = t.frontier

let oracle_funnel t =
  List.sort (fun (_, a) (_, b) -> compare b a) t.oracle_counts

let sample_rate t ~now =
  (match t.rate_time with
  | Some t0 when now > t0 ->
      t.rate <- Some (float_of_int (t.rounds - t.rate_rounds) /. (now -. t0))
  | _ -> ());
  t.rate_time <- Some now;
  t.rate_rounds <- t.rounds

(* average rate over the whole trace when no live samples exist: per-round
   wall times sum per worker, so campaign seconds ~ wall_ms / workers *)
let avg_rate t =
  match t.summary_wall_s with
  | Some s when s > 0.0 -> float_of_int t.rounds /. s
  | _ ->
      let workers = max 1 (List.length t.workers) in
      let secs = t.wall_ms /. 1000.0 /. float_of_int workers in
      if secs > 0.0 then float_of_int t.rounds /. secs else 0.0

let effective_rate t = match t.rate with Some r -> r | None -> avg_rate t

let stmts_per_sec t =
  match t.summary_sps with
  | Some s -> s
  | None ->
      let workers = max 1 (List.length t.workers) in
      let secs = t.wall_ms /. 1000.0 /. float_of_int workers in
      if secs > 0.0 then float_of_int t.statements /. secs else 0.0

let bar width frac =
  let filled = int_of_float (frac *. float_of_int width) in
  let filled = max 0 (min width filled) in
  String.concat ""
    (List.init width (fun i -> if i < filled then "#" else "-"))

let stale_points ?(stale = 10) t =
  Frontier.coldest ~n:stale ~universe:t.universe t.frontier
  |> List.filter (fun (_, hits) -> hits = 0)

let render ?(ansi = false) ?(stale = 10) t =
  let buf = Buffer.create 2048 in
  if ansi then Buffer.add_string buf "\027[2J\027[H";
  let frac = Frontier.fraction ~universe:t.universe t.frontier in
  Buffer.add_string buf
    (Printf.sprintf "pqs campaign — %s\n"
       (Dialect.display_name t.dialect));
  Buffer.add_string buf
    (Printf.sprintf
       "rounds %d   rounds/s %.1f   stmts/s %.0f   checks %d   reports %d\n"
       t.rounds (effective_rate t) (stmts_per_sec t) t.queries t.reports);
  Buffer.add_string buf
    (Printf.sprintf "frontier [%s] %d/%d (%.1f%%)\n" (bar 32 frac)
       (Frontier.hit_in ~universe:t.universe t.frontier)
       (List.length t.universe) (100.0 *. frac));
  (match oracle_funnel t with
  | [] -> Buffer.add_string buf "oracle funnel: (no findings yet)\n"
  | funnel ->
      Buffer.add_string buf "oracle funnel:\n";
      List.iter
        (fun (o, c) ->
          Buffer.add_string buf (Printf.sprintf "  %-14s %d\n" o c))
        funnel);
  (match stale_points ~stale t with
  | [] -> Buffer.add_string buf "frontier fully exercised\n"
  | cold ->
      Buffer.add_string buf
        (Printf.sprintf "stale points (%d coldest):\n" (List.length cold));
      List.iter
        (fun (p, _) -> Buffer.add_string buf (Printf.sprintf "  %s\n" p))
        cold);
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ?(stale = 25) t =
  let buf = Buffer.create 8192 in
  let frac = Frontier.fraction ~universe:t.universe t.frontier in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  add "<title>pqs campaign report — %s</title>\n"
    (html_escape (Dialect.display_name t.dialect));
  add
    "<style>body{font-family:monospace;margin:2em;background:#111;color:#eee}\n\
     table{border-collapse:collapse;margin:1em 0}\n\
     td,th{border:1px solid #444;padding:4px 10px;text-align:left}\n\
     .bar{background:#333;width:320px;height:14px;display:inline-block}\n\
     .fill{background:#4c4;height:14px;display:block}\n\
     h1,h2{color:#8cf}.cold{color:#fa6}</style></head><body>\n";
  add "<h1>pqs campaign — %s</h1>\n"
    (html_escape (Dialect.display_name t.dialect));
  add "<table><tr><th>rounds</th><th>rounds/s</th><th>stmts/s</th>\
       <th>checks</th><th>reports</th></tr>";
  add "<tr><td>%d</td><td>%.1f</td><td>%.0f</td><td>%d</td><td>%d</td></tr>\
       </table>\n"
    t.rounds (effective_rate t) (stmts_per_sec t) t.queries t.reports;
  add "<h2>Coverage frontier</h2>\n";
  add
    "<p><span class=\"bar\"><span class=\"fill\" style=\"width:%.1f%%\">\
     </span></span> %d/%d points (%.1f%%)</p>\n"
    (100.0 *. frac)
    (Frontier.hit_in ~universe:t.universe t.frontier)
    (List.length t.universe) (100.0 *. frac);
  add "<h2>Oracle funnel</h2>\n";
  (match oracle_funnel t with
  | [] -> add "<p>(no findings)</p>\n"
  | funnel ->
      add "<table><tr><th>oracle</th><th>firings</th></tr>";
      List.iter
        (fun (o, c) -> add "<tr><td>%s</td><td>%d</td></tr>" (html_escape o) c)
        funnel;
      add "</table>\n");
  add "<h2>Stale frontier points</h2>\n";
  (match stale_points ~stale t with
  | [] -> add "<p>frontier fully exercised</p>\n"
  | cold ->
      add "<table><tr><th>point</th></tr>";
      List.iter
        (fun (p, _) ->
          add "<tr><td class=\"cold\">%s</td></tr>" (html_escape p))
        cold;
      add "</table>\n");
  add "<h2>Hottest points</h2>\n<table><tr><th>point</th><th>hits</th>\
       <th>first seed</th></tr>";
  let hot =
    Frontier.points t.frontier
    |> List.sort (fun (_, a) (_, b) ->
           compare b.Frontier.hits a.Frontier.hits)
  in
  List.iteri
    (fun i (p, e) ->
      if i < 15 then
        add "<tr><td>%s</td><td>%d</td><td>%d</td></tr>" (html_escape p)
          e.Frontier.hits e.Frontier.first_seed)
    hot;
  add "</table>\n</body></html>\n";
  Buffer.contents buf

let of_trace_file ~dialect path =
  let t = create ~dialect in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          ignore (feed_line t (input_line ic))
        done;
        t
      with End_of_file -> t)
