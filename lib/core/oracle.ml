open Sqlval

type context = {
  ctx_dialect : Dialect.t;
  ctx_session : Engine.Session.t;
  ctx_db_seed : int;
  ctx_rng : Rng.t;
  ctx_telemetry : Telemetry.t;
}

type outcome =
  | Succeeded of Engine.Session.exec_result
  | Failed of Engine.Errors.t
  | Crashed of string

type check = {
  check_stmt : Sqlast.Ast.stmt;
  negative : bool;
  pivot_found : bool;
  check_pivot : (Schema_info.table_info * Value.t array) list;
}

type event =
  | Statement of Sqlast.Ast.stmt * outcome
  | Containment_check of check
  | Database_ready

type verdict =
  | Pass
  | Report of { kind : Bug_report.oracle; message : string }

module type S = sig
  val name : string
  val observe : context -> event -> verdict
end

type t = (module S)

let name (module O : S) = O.name
let observe (module O : S) ctx event = O.observe ctx event

let make ~name observe : t =
  (module struct
    let name = name
    let observe = observe
  end)

let error_oracle : t =
  make ~name:"error" (fun ctx -> function
    | Statement (stmt, Failed e) ->
        if Expected_errors.is_expected ctx.ctx_dialect stmt e then Pass
        else
          Report
            { kind = Bug_report.Error_oracle; message = Engine.Errors.show e }
    | _ -> Pass)

let crash_oracle : t =
  make ~name:"crash" (fun _ -> function
    | Statement (_, Crashed msg) ->
        Report { kind = Bug_report.Crash; message = msg }
    | _ -> Pass)

let containment : t =
  make ~name:"containment" (fun _ -> function
    | Containment_check { negative; pivot_found; _ } ->
        if negative && pivot_found then
          Report
            {
              kind = Bug_report.Non_containment;
              message = "pivot row unexpectedly contained in result set";
            }
        else if (not negative) && not pivot_found then
          Report
            {
              kind = Bug_report.Containment;
              message = "pivot row not contained in result set";
            }
        else Pass
    | _ -> Pass)

let metamorphic ?(checks_per_db = 4) () : t =
  make ~name:"metamorphic" (fun ctx -> function
    | Database_ready ->
        let tables = Schema_info.tables_of_session ctx.ctx_session in
        let rec go budget = function
          | [] -> Pass
          | _ when budget <= 0 -> Pass
          | table :: rest -> (
              match
                Metamorphic.check ctx.ctx_session ~rng:ctx.ctx_rng ~table
              with
              | Metamorphic.Inconsistent msg ->
                  Report { kind = Bug_report.Metamorphic; message = msg }
              | Metamorphic.Consistent | Metamorphic.Skipped ->
                  go (budget - 1) rest)
        in
        go checks_per_db tables
    | _ -> Pass)

let defaults = [ error_oracle; crash_oracle; containment ]

module Registry = struct
  type recheck =
    | Not_recheckable
    | Replay_outcome
    | Custom of
        (dialect:Dialect.t ->
        bugs:Engine.Bug.set ->
        oracle:Bug_report.oracle ->
        Sqlast.Ast.stmt list ->
        bool)

  type entry = {
    reg_name : string;
    reg_doc : string;
    reg_flag : string option;
    reg_default : bool;
    reg_kinds : Bug_report.oracle list;
    reg_make : unit -> t;
    reg_recheck : recheck;
  }

  (* registration order is display order; re-registering a name replaces
     the old entry in place (idempotent module re-initialization) *)
  let entries : entry list ref = ref []

  let register e =
    if List.exists (fun e' -> e'.reg_name = e.reg_name) !entries then
      entries :=
        List.map (fun e' -> if e'.reg_name = e.reg_name then e else e') !entries
    else entries := !entries @ [ e ]

  let all () = !entries
  let find name = List.find_opt (fun e -> e.reg_name = name) !entries

  let find_kind kind =
    List.find_opt
      (fun e -> List.exists (Bug_report.equal_oracle kind) e.reg_kinds)
      !entries
end

(* the paper's trio is always on and rechecks by replaying the script *)
let () =
  Registry.register
    {
      Registry.reg_name = "error";
      reg_doc = "any statement error outside the expected-errors whitelist";
      reg_flag = None;
      reg_default = true;
      reg_kinds = [ Bug_report.Error_oracle ];
      reg_make = (fun () -> error_oracle);
      reg_recheck = Registry.Replay_outcome;
    };
  Registry.register
    {
      Registry.reg_name = "crash";
      reg_doc = "simulated engine SEGFAULTs";
      reg_flag = None;
      reg_default = true;
      reg_kinds = [ Bug_report.Crash ];
      reg_make = (fun () -> crash_oracle);
      reg_recheck = Registry.Replay_outcome;
    };
  Registry.register
    {
      Registry.reg_name = "containment";
      reg_doc = "pivot-row containment, both polarities (paper steps 6-7)";
      reg_flag = None;
      reg_default = true;
      reg_kinds = [ Bug_report.Containment; Bug_report.Non_containment ];
      reg_make = (fun () -> containment);
      reg_recheck = Registry.Replay_outcome;
    };
  Registry.register
    {
      Registry.reg_name = "metamorphic";
      reg_doc = "add the metamorphic aggregate-partition oracle";
      reg_flag = Some "metamorphic";
      reg_default = false;
      reg_kinds = [ Bug_report.Metamorphic ];
      reg_make = (fun () -> metamorphic ());
      (* the violated partition relation cannot be re-checked from the
         statement list alone *)
      reg_recheck = Registry.Not_recheckable;
    }

let first_report oracles ctx event =
  List.fold_left
    (fun acc oracle ->
      match acc with
      | Some _ -> acc
      | None -> (
          match observe oracle ctx event with
          | Pass -> None
          | Report { kind; message } -> Some (kind, message)))
    None oracles
