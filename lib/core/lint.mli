(** The static-analysis self-check oracle.

    Bridges [Analysis] into the PQS loop: typechecks every containment
    query against the live session's catalog and, on a clean engine (no
    injected bugs), lints the planner's access paths.  Error diagnostics
    become [Bug_report.Lint] reports.

    The oracle is campaign-neutral by construction: it only analyzes
    successfully executed [Select_stmt] / [Explain] statements (expected
    DDL/DML errors keep flowing to the error oracle), plan linting is
    gated on an empty bug set, and appending it after [Oracle.defaults]
    preserves report priority — so enabling it must not change the bug
    set a campaign reports. *)

open Sqlval

val table_of_info : Schema_info.table_info -> Analysis.Typecheck.table

val env_of_session : Engine.Session.t -> Analysis.env
(** Analysis environment over the session's current tables and views
    (view columns are untyped with binary collation). *)

val env_of_pivot :
  Dialect.t -> (Schema_info.table_info * Value.t array) list -> Analysis.env
(** Environment seeded from a pivot row: each column's nullability is the
    abstraction of its pivot value, for cross-checking the analysis
    against [Interp]'s concrete evaluation. *)

val check_stmt : Engine.Session.t -> Sqlast.Ast.stmt -> Analysis.Diagnostic.t list
(** Typecheck the query inside a [Select_stmt] / [Explain]. *)

val lint_plans : Engine.Session.t -> Sqlast.Ast.query -> Analysis.Diagnostic.t list
(** Choose and lint the access path for every single-table scan site in
    the query (including derived tables and compound arms). *)

val oracle : Oracle.t
(** The ["lint"] oracle.  Append it to [Oracle.defaults] (CLI flag
    [--lint]); never insert it before them. *)

type sweep_result = {
  sw_seeds : int;
  sw_queries : int;  (** containment statements analyzed *)
  sw_plans : int;  (** single-table scan sites linted *)
  sw_diags : (int * Analysis.Diagnostic.t) list;
      (** every type/nullability/plan diagnostic, tagged with its seed *)
  sw_simplify_diags : (int * Analysis.Diagnostic.t) list;
      (** simplification/interval findings (always-true, dead-case-branch,
          unsat-predicate, out-of-interval) over the generated WHERE
          clauses.  These are advisory warnings about the *queries* — a
          random predicate may legitimately be unsatisfiable — so they are
          counted separately and never fail the sweep. *)
}

val sweep :
  ?queries_per_seed:int ->
  seed_lo:int ->
  seed_hi:int ->
  Dialect.t ->
  sweep_result
(** Generate a lean database and [queries_per_seed] containment queries
    per seed in [seed_lo..seed_hi] (inclusive) on a clean engine, and
    analyze all of them.  The generators are well-typed by construction,
    so any diagnostic is an analyzer (or generator) defect — [make lint]
    and the acceptance property test fail on a non-empty [sw_diags].
    [sw_simplify_diags] is informational and never fails the sweep. *)
