open Sqlval

type t = {
  databases : int;
  pivots : int;
  queries : int;
  statements : int;
  interp_failures : int;
  false_positives : int;
  reports : Bug_report.t list;
  truth_values : (Tvl.t * int) list;
  negative_checks : int;
  lint_checks : int;
  lint_diagnostics : int;
  plan_checks : int;
  plan_divergences : int;
  const_checks : int;
  const_divergences : int;
  frontier : Frontier.t;
}

(* truth_values is kept on the canonical key set so that [merge] is
   associative and [empty] an exact identity on every reachable value *)
let canonical_truths = [ Tvl.True; Tvl.False; Tvl.Unknown ]

let truth_count tv t =
  match List.assoc_opt t tv with Some n -> n | None -> 0

let canonical_truth_values tv =
  List.map (fun t -> (t, truth_count tv t)) canonical_truths

let empty =
  {
    databases = 0;
    pivots = 0;
    queries = 0;
    statements = 0;
    interp_failures = 0;
    false_positives = 0;
    reports = [];
    truth_values = canonical_truth_values [];
    negative_checks = 0;
    lint_checks = 0;
    lint_diagnostics = 0;
    plan_checks = 0;
    plan_divergences = 0;
    const_checks = 0;
    const_divergences = 0;
    frontier = Frontier.empty;
  }

let merge a b =
  {
    databases = a.databases + b.databases;
    pivots = a.pivots + b.pivots;
    queries = a.queries + b.queries;
    statements = a.statements + b.statements;
    interp_failures = a.interp_failures + b.interp_failures;
    false_positives = a.false_positives + b.false_positives;
    reports = a.reports @ b.reports;
    truth_values =
      List.map
        (fun t -> (t, truth_count a.truth_values t + truth_count b.truth_values t))
        canonical_truths;
    negative_checks = a.negative_checks + b.negative_checks;
    lint_checks = a.lint_checks + b.lint_checks;
    lint_diagnostics = a.lint_diagnostics + b.lint_diagnostics;
    plan_checks = a.plan_checks + b.plan_checks;
    plan_divergences = a.plan_divergences + b.plan_divergences;
    const_checks = a.const_checks + b.const_checks;
    const_divergences = a.const_divergences + b.const_divergences;
    frontier = Frontier.union a.frontier b.frontier;
  }

let merge_all = List.fold_left merge empty
let add_report t r = { t with reports = t.reports @ [ r ] }

let bump_truth t truth =
  {
    t with
    truth_values =
      List.map
        (fun (t', n) -> if Tvl.equal truth t' then (t', n + 1) else (t', n))
        t.truth_values;
  }

let summary t =
  Printf.sprintf
    "databases=%d pivots=%d containment-checks=%d statements=%d \
     interp-failures=%d false-positives=%d negative-checks=%d \
     lint-checks=%d lint-diagnostics=%d plan-checks=%d plan-divergences=%d \
     const-checks=%d const-divergences=%d frontier-points=%d findings=%d"
    t.databases t.pivots t.queries t.statements t.interp_failures
    t.false_positives t.negative_checks t.lint_checks t.lint_diagnostics
    t.plan_checks t.plan_divergences t.const_checks t.const_divergences
    (Frontier.cardinal t.frontier)
    (List.length t.reports)

let pp fmt t = Format.pp_print_string fmt (summary t)
