type outcome = {
  seed : int;
  worker : int;
  round : Stats.t;
  wall : float;
}

type t = {
  stats : Stats.t;
  outcomes : outcome list;
  domains : int;
  elapsed : float;
}

let reports t = t.stats.Stats.reports

let statements_per_sec t =
  if t.elapsed <= 0.0 then 0.0
  else float_of_int t.stats.Stats.statements /. t.elapsed

let seed_line o =
  Printf.sprintf
    "{\"type\":\"seed\",\"seed\":%d,\"worker\":%d,\"statements\":%d,\
     \"queries\":%d,\"pivots\":%d,\"reports\":%d,\"wall_ms\":%.3f}"
    o.seed o.worker o.round.Stats.statements o.round.Stats.queries
    o.round.Stats.pivots
    (List.length o.round.Stats.reports)
    (o.wall *. 1000.0)

let summary_line t =
  Printf.sprintf
    "{\"type\":\"campaign\",\"domains\":%d,\"databases\":%d,\
     \"statements\":%d,\"queries\":%d,\"reports\":%d,\"wall_s\":%.3f,\
     \"statements_per_sec\":%.1f}"
    t.domains t.stats.Stats.databases t.stats.Stats.statements
    t.stats.Stats.queries
    (List.length t.stats.Stats.reports)
    t.elapsed (statements_per_sec t)

let output_trace oc t =
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun o -> output_string oc (seed_line o ^ "\n")) t.outcomes;
      output_string oc (summary_line t ^ "\n"))

let write_trace t path = output_trace (open_out path) t

let run ?domains ?trace ~seed_lo ~seed_hi (config : Runner.config) =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  (* open the trace before spending any compute, so a bad path fails fast *)
  let trace_oc = Option.map open_out trace in
  let seeds = List.init (max 0 (seed_hi - seed_lo)) (fun i -> seed_lo + i) in
  (* striped sharding balances load; any deterministic assignment yields
     the same merged result because rounds are independent *)
  let shard w = List.filter (fun s -> (s - seed_lo) mod domains = w) seeds in
  (* each worker gets a private coverage instrument so domains never share
     the mutable hit tables; merged below after the join *)
  let worker_covs =
    match config.Runner.Config.coverage with
    | None -> [||]
    | Some _ -> Array.init domains (fun _ -> Engine.Coverage.create ())
  in
  let work w () =
    let config =
      if Array.length worker_covs = 0 then config
      else Runner.Config.with_coverage (Some worker_covs.(w)) config
    in
    List.map
      (fun s ->
        let t0 = Unix.gettimeofday () in
        let round = Runner.run_round config ~db_seed:s in
        { seed = s; worker = w; round; wall = Unix.gettimeofday () -. t0 })
      (shard w)
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    if domains = 1 then work 0 ()
    else
      List.init domains (fun w -> Domain.spawn (work w))
      |> List.concat_map Domain.join
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match config.Runner.Config.coverage with
  | Some dst ->
      Array.iter (fun src -> Engine.Coverage.merge_into ~dst ~src) worker_covs
  | None -> ());
  let outcomes =
    List.sort (fun a b -> compare a.seed b.seed) outcomes
  in
  let stats = Stats.merge_all (List.map (fun o -> o.round) outcomes) in
  let t = { stats; outcomes; domains; elapsed } in
  (match trace_oc with Some oc -> output_trace oc t | None -> ());
  t
