type outcome = {
  seed : int;
  worker : int;
  round : Stats.t;
  started : float;
  wall : float;
}

type t = {
  stats : Stats.t;
  outcomes : outcome list;
  domains : int;
  elapsed : float;
  dialect : Sqlval.Dialect.t;
}

let reports t = t.stats.Stats.reports

let statements_per_sec t =
  if t.elapsed <= 0.0 then 0.0
  else float_of_int t.stats.Stats.statements /. t.elapsed

let seed_line o =
  (* point names are [a-z0-9._] by construction, so they embed in JSON
     without escaping *)
  let points =
    Frontier.points o.round.Stats.frontier
    |> List.map (fun (p, _) -> "\"" ^ p ^ "\"")
    |> String.concat ","
  in
  let oracle =
    match o.round.Stats.reports with
    | r :: _ ->
        Printf.sprintf ",\"oracle\":\"%s\""
          (Bug_report.oracle_token r.Bug_report.oracle)
    | [] -> ""
  in
  Printf.sprintf
    "{\"type\":\"seed\",\"seed\":%d,\"worker\":%d,\"statements\":%d,\
     \"queries\":%d,\"pivots\":%d,\"reports\":%d,\"wall_ms\":%.3f%s,\
     \"points\":[%s]}"
    o.seed o.worker o.round.Stats.statements o.round.Stats.queries
    o.round.Stats.pivots
    (List.length o.round.Stats.reports)
    (o.wall *. 1000.0)
    oracle points

let summary_line t =
  let universe = Gen_bias.universe t.dialect in
  Printf.sprintf
    "{\"type\":\"campaign\",\"domains\":%d,\"databases\":%d,\
     \"statements\":%d,\"queries\":%d,\"reports\":%d,\"wall_s\":%.3f,\
     \"statements_per_sec\":%.1f,\"dialect\":\"%s\",\
     \"frontier_points\":%d,\"frontier_fraction\":%.4f}"
    t.domains t.stats.Stats.databases t.stats.Stats.statements
    t.stats.Stats.queries
    (List.length t.stats.Stats.reports)
    t.elapsed (statements_per_sec t)
    (Sqlval.Dialect.name t.dialect)
    (Frontier.hit_in ~universe t.stats.Stats.frontier)
    (Frontier.fraction ~universe t.stats.Stats.frontier)

let partial_line ~domains ~seeds_done =
  Printf.sprintf
    "{\"type\":\"campaign_partial\",\"domains\":%d,\"seeds_done\":%d}" domains
    seeds_done

let output_trace oc t =
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun o -> output_string oc (seed_line o ^ "\n")) t.outcomes;
      output_string oc (summary_line t ^ "\n"))

let write_trace t path = output_trace (open_out path) t

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

let chrome_events t =
  let workers =
    List.sort_uniq compare (List.map (fun o -> o.worker) t.outcomes)
  in
  Telemetry.Trace.process_name "pqs campaign"
  :: List.map
       (fun w ->
         Telemetry.Trace.thread_name ~tid:w (Printf.sprintf "worker %d" w))
       workers
  @ List.map
      (fun o ->
        (* round_id matches the flight recorder's [round_seed] (and the
           bundle-<seed>-* directory names), linking Chrome-trace rounds to
           trace.json event logs *)
        let bundles =
          List.filter_map (fun r -> r.Bug_report.bundle) o.round.Stats.reports
        in
        Telemetry.Trace.complete
          ~name:(Printf.sprintf "seed %d" o.seed)
          ~cat:"round"
          ~args:
            ([
               ("seed", Telemetry.Trace.Int o.seed);
               ("round_id", Telemetry.Trace.Int o.seed);
               ("statements", Telemetry.Trace.Int o.round.Stats.statements);
               ("queries", Telemetry.Trace.Int o.round.Stats.queries);
               ( "reports",
                 Telemetry.Trace.Int (List.length o.round.Stats.reports) );
             ]
            @
            match bundles with
            | [] -> []
            | b :: _ -> [ ("bundle", Telemetry.Trace.Str b) ])
          ~ts_us:(o.started *. 1e6) ~dur_us:(o.wall *. 1e6) ~tid:o.worker ())
      t.outcomes

let write_chrome_trace t path = Telemetry.Trace.write path (chrome_events t)

(* ------------------------------------------------------------------ *)

(* the periodic metrics snapshot: a fresh registry built from the
   supervisor-side merged stats (worker registries are single-owner and
   must not be read mid-run; phase histograms appear only in the final
   post-join export) *)
let progress_registry ~domains ~seeds ~elapsed ~dialect (stats : Stats.t) =
  let reg = Telemetry.create () in
  Telemetry.inc reg ~by:stats.Stats.databases "pqs_rounds_total";
  Telemetry.inc reg ~by:stats.Stats.statements "pqs_statements_total";
  Telemetry.inc reg ~by:stats.Stats.queries "pqs_queries_total";
  Telemetry.inc reg ~by:stats.Stats.pivots "pqs_pivots_total";
  Telemetry.inc reg
    ~by:(List.length stats.Stats.reports)
    "pqs_reports_total";
  Telemetry.set_gauge reg "pqs_campaign_domains" (float_of_int domains);
  Telemetry.set_gauge reg "pqs_campaign_seeds" (float_of_int seeds);
  Telemetry.set_gauge reg "pqs_campaign_elapsed_seconds" elapsed;
  let universe = Gen_bias.universe dialect in
  let labels = [ ("dialect", Sqlval.Dialect.name dialect) ] in
  Telemetry.set_gauge reg ~labels "pqs_frontier_points_hit"
    (float_of_int (Frontier.hit_in ~universe stats.Stats.frontier));
  Telemetry.set_gauge reg ~labels "pqs_frontier_fraction"
    (Frontier.fraction ~universe stats.Stats.frontier);
  reg

let run ?domains ?trace ?chrome_trace ?frontier_json ?metrics_every
    ?metrics_path ~seed_lo ~seed_hi (config : Runner.config) =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  (* a round allocates ~170k minor words and everything it allocates —
     including the event graphs the flight recorder pins in its ring
     until round end — is dead by the next [begin_round].  With the
     default 256k-word nursery a minor collection lands mid-round two
     rounds out of three and promotes those still-reachable graphs to
     the major heap, which shows up as recorder overhead.  A 2M-word
     nursery (16 MB/domain) spans ~12 rounds, so almost every round's
     garbage dies young instead; only ever grown, never shrunk. *)
  let () =
    let g = Gc.get () in
    if g.Gc.minor_heap_size < 1 lsl 21 then
      Gc.set { g with Gc.minor_heap_size = 1 lsl 21 }
  in
  (* open the trace before spending any compute, so a bad path fails fast *)
  let trace_oc = Option.map open_out trace in
  let trace_mutex = Mutex.create () in
  let seeds_done = Atomic.make 0 in
  let t0 = Telemetry.Clock.now () in
  let seeds = List.init (max 0 (seed_hi - seed_lo)) (fun i -> seed_lo + i) in
  (* periodic metrics export: merged stats accumulate supervisor-side
     under the trace mutex (worker registries are single-owner and can't
     be read mid-run) and re-export atomically every [metrics_every]
     seconds, so a scraper always sees a complete file *)
  let metrics_acc = ref Stats.empty in
  let metrics_last = ref 0.0 in
  let note_metrics round =
    match (metrics_every, metrics_path) with
    | Some every, Some path ->
        metrics_acc := Stats.merge !metrics_acc round;
        let now = Telemetry.Clock.now () -. t0 in
        if now -. !metrics_last >= every then begin
          metrics_last := now;
          let reg =
            progress_registry ~domains ~seeds:(List.length seeds) ~elapsed:now
              ~dialect:config.Runner.Config.dialect !metrics_acc
          in
          try Telemetry.write_file_atomic reg path with Sys_error _ -> ()
        end
    | _ -> ()
  in
  (* each seed line streams out (and flushes) as its round completes, so an
     interrupted campaign still leaves a usable prefix of the trace *)
  let emit_seed o =
    Mutex.protect trace_mutex (fun () ->
        (match trace_oc with
        | None -> ()
        | Some oc ->
            output_string oc (seed_line o ^ "\n");
            flush oc);
        note_metrics o.round)
  in
  (* striped sharding balances load; any deterministic assignment yields
     the same merged result because rounds are independent *)
  let shard w = List.filter (fun s -> (s - seed_lo) mod domains = w) seeds in
  (* each worker gets a private coverage instrument so domains never share
     the mutable hit tables; merged below after the join *)
  let worker_covs =
    match config.Runner.Config.coverage with
    | None -> [||]
    | Some _ -> Array.init domains (fun _ -> Engine.Coverage.create ())
  in
  (* likewise a private telemetry registry per worker, merged after the
     join (recording is campaign-neutral, so this changes no outcome) *)
  let telemetry_enabled =
    Telemetry.enabled config.Runner.Config.telemetry
  in
  let worker_teles =
    if telemetry_enabled then Array.init domains (fun _ -> Telemetry.create ())
    else [||]
  in
  let work w () =
    let config =
      if Array.length worker_covs = 0 then config
      else Runner.Config.with_coverage (Some worker_covs.(w)) config
    in
    let tele =
      if telemetry_enabled then worker_teles.(w) else Telemetry.noop
    in
    let config = Runner.Config.with_telemetry tele config in
    (* one ring per worker, recycled across its rounds by begin_round *)
    let recorder = Runner.recorder_for config in
    (* worker-local guided-bias state: each shard learns from its own
       earlier rounds (sharing across domains would race; per-seed results
       stay deterministic per shard assignment) *)
    let bias = ref Frontier.empty in
    List.map
      (fun s ->
        let started = Telemetry.Clock.now () -. t0 in
        let round = Runner.run_round ~recorder ~bias config ~db_seed:s in
        let wall = Telemetry.Clock.now () -. t0 -. started in
        Telemetry.observe tele "pqs_round_seconds" wall;
        Telemetry.inc tele "pqs_rounds_total";
        let o = { seed = s; worker = w; round; started; wall } in
        Atomic.incr seeds_done;
        emit_seed o;
        o)
      (shard w)
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* abnormal exit: mark the streamed prefix as partial, then release
         the channel (normal exit appends the summary below instead) *)
      match trace_oc with
      | Some oc when not !finished ->
          (try
             output_string oc
               (partial_line ~domains ~seeds_done:(Atomic.get seeds_done)
               ^ "\n");
             flush oc
           with Sys_error _ -> ());
          close_out_noerr oc
      | _ -> ())
    (fun () ->
      let outcomes =
        if domains = 1 then work 0 ()
        else
          List.init domains (fun w -> Domain.spawn (work w))
          |> List.concat_map Domain.join
      in
      let elapsed = Telemetry.Clock.now () -. t0 in
      (match config.Runner.Config.coverage with
      | Some dst ->
          Array.iter
            (fun src -> Engine.Coverage.merge_into ~dst ~src)
            worker_covs
      | None -> ());
      if telemetry_enabled then begin
        let dst = config.Runner.Config.telemetry in
        Array.iter (fun src -> Telemetry.merge_into ~dst ~src) worker_teles;
        Telemetry.set_gauge dst "pqs_campaign_domains" (float_of_int domains);
        Telemetry.set_gauge dst "pqs_campaign_seeds"
          (float_of_int (List.length seeds))
      end;
      let outcomes = List.sort (fun a b -> compare a.seed b.seed) outcomes in
      let stats = Stats.merge_all (List.map (fun o -> o.round) outcomes) in
      let dialect = config.Runner.Config.dialect in
      let t = { stats; outcomes; domains; elapsed; dialect } in
      let universe = Gen_bias.universe dialect in
      if telemetry_enabled then begin
        let dst = config.Runner.Config.telemetry in
        let labels = [ ("dialect", Sqlval.Dialect.name dialect) ] in
        Telemetry.set_gauge dst ~labels "pqs_frontier_points_hit"
          (float_of_int (Frontier.hit_in ~universe stats.Stats.frontier));
        Telemetry.set_gauge dst ~labels "pqs_frontier_fraction"
          (Frontier.fraction ~universe stats.Stats.frontier);
        (* time-to-first-hit per point group: walk outcomes in ascending
           seed order and observe the completion time of the round that
           first exercised each point *)
        let seen = Hashtbl.create 256 in
        List.iter
          (fun o ->
            List.iter
              (fun (p, _) ->
                if not (Hashtbl.mem seen p) then begin
                  Hashtbl.replace seen p ();
                  let group =
                    match String.index_opt p '.' with
                    | Some i -> String.sub p 0 i
                    | None -> p
                  in
                  Telemetry.observe dst
                    ~labels:[ ("phase", group) ]
                    "pqs_frontier_first_hit_seconds" (o.started +. o.wall)
                end)
              (Frontier.points o.round.Stats.frontier))
          outcomes
      end;
      (* final periodic export: the full post-join registry (with the
         phase histograms the mid-run snapshots cannot carry) *)
      (match (metrics_every, metrics_path) with
      | Some _, Some path -> (
          let reg =
            if telemetry_enabled then config.Runner.Config.telemetry
            else
              progress_registry ~domains ~seeds:(List.length seeds) ~elapsed
                ~dialect stats
          in
          try Telemetry.write_file_atomic reg path with Sys_error _ -> ())
      | _ -> ());
      (match frontier_json with
      | Some path -> (
          let bundles =
            List.filter_map
              (fun r -> r.Bug_report.bundle)
              stats.Stats.reports
          in
          try Frontier.write_json ~universe ~bundles stats.Stats.frontier path
          with Sys_error _ -> ())
      | None -> ());
      (match trace_oc with
      | Some oc ->
          output_string oc (summary_line t ^ "\n");
          finished := true;
          close_out oc
      | None -> finished := true);
      (match chrome_trace with
      | Some path -> write_chrome_trace t path
      | None -> ());
      t)
