(* Replay harness for repro bundles.

   A bundle's [repro.sql] is self-contained: a [-- key: value] header
   (dialect, seed, oracle token, enabled bugs) followed by plain SQL.
   Replaying parses the header, re-enables the same injected bugs, runs
   the script through the real parser and re-checks the oracle verdict
   with the same manifestation check the reducer uses — so a bundle that
   replays is also a bundle the reducer can minimize. *)

open Sqlval

type outcome = {
  path : string;
  oracle : Bug_report.oracle;
  recheckable : bool;
      (* metamorphic and lint verdicts are not re-derivable from the
         statement list alone *)
  reproduced : bool;
  detail : string;
}

let read_file path = In_channel.with_open_text path In_channel.input_all

let parse_bugs = function
  | None -> Ok Engine.Bug.empty_set
  | Some s ->
      let names =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun n -> n <> "")
      in
      let rec resolve acc = function
        | [] -> Ok (Engine.Bug.set_of_list (List.rev acc))
        | n :: rest -> (
            match Engine.Bug.of_string n with
            | Some b -> resolve (b :: acc) rest
            | None -> Error (Printf.sprintf "unknown bug %S in '-- bugs:'" n))
      in
      resolve [] names

let check_file path : (outcome, string) result =
  let ( let* ) = Result.bind in
  let* text =
    try Ok (read_file path) with Sys_error msg -> Error msg
  in
  let headers, body = Trace.Bundle.parse_script_text text in
  let find k = List.assoc_opt k headers in
  let* dialect =
    match find "dialect" with
    | None -> Error "missing '-- dialect:' header"
    | Some n -> (
        match Dialect.of_name n with
        | Some d -> Ok d
        | None -> Error (Printf.sprintf "unknown dialect %S" n))
  in
  let* oracle =
    match find "oracle" with
    | None -> Error "missing '-- oracle:' header"
    | Some t -> (
        match Bug_report.oracle_of_token t with
        | Some o -> Ok o
        | None -> Error (Printf.sprintf "unknown oracle token %S" t))
  in
  let* bugs = parse_bugs (find "bugs") in
  let* stmts =
    match Sqlparse.Parser.parse_script body with
    | Ok stmts -> Ok stmts
    | Error e -> Error (Sqlparse.Parser.show_error e)
  in
  let* () = if stmts = [] then Error "empty statement body" else Ok () in
  (* recheckability comes from the oracle registry, the same table the
     reducer dispatches on *)
  match Oracle.Registry.find_kind oracle with
  | Some { Oracle.Registry.reg_recheck = Oracle.Registry.Not_recheckable; _ }
    ->
      (* the verdict lives outside the script; the bundle still carries
         the trace and message for triage *)
      Ok
        {
          path;
          oracle;
          recheckable = false;
          reproduced = true;
          detail = "verdict not re-checkable from the script alone";
        }
  | Some _ | None ->
      let check = Reducer.manifestation_check ~dialect ~bugs ~oracle in
      let reproduced = check stmts in
      Ok
        {
          path;
          oracle;
          recheckable = true;
          reproduced;
          detail =
            (if reproduced then "verdict reproduced"
             else "verdict did NOT reproduce");
        }
