open Sqlval
module A = Sqlast.Ast

module Config = struct
  type t = {
    dialect : Dialect.t;
    bugs : Engine.Bug.set;
    seed : int;
    table_count : int;
    max_rows : int;
    extra_statements : int;
    pivots_per_db : int;
    queries_per_pivot : int;
    max_depth : int;
    check_expressions : bool;
    verify_ground_truth : bool;
    rectify : bool;
    coverage : Engine.Coverage.t option;
    check_non_containment : bool;
    oracles : Oracle.t list;
    telemetry : Telemetry.t;
    trace : bool;  (** flight-record every round even when nothing fires *)
    trace_capacity : int;
    bundle_dir : string option;
        (** where repro bundles are written when an oracle fires *)
    trace_sample : int;
        (** also dump full traces of every Nth healthy round (0 = off);
            requires [bundle_dir] *)
    backend : Engine.Exec_backend.kind;
        (** execution backend of the campaign's test sessions; ground-truth
            confirmation always re-runs on the interpreted reference *)
    guided : bool;
        (** coverage-guided generation: bias query shapes toward the cold
            points of the accumulated frontier *)
  }

  let make ?(bugs = Engine.Bug.empty_set) ?(seed = 1) ?(table_count = 2)
      ?(max_rows = 6) ?(extra_statements = 8) ?(pivots_per_db = 4)
      ?(queries_per_pivot = 6) ?(max_depth = 4) ?(check_expressions = true)
      ?(verify_ground_truth = true) ?(rectify = true) ?coverage
      ?(check_non_containment = true) ?(oracles = Oracle.defaults)
      ?(telemetry = Telemetry.noop) ?(trace = false) ?(trace_capacity = 1024)
      ?bundle_dir ?(trace_sample = 0)
      ?(backend = Engine.Exec_backend.Interpreted) ?(guided = false) dialect =
    {
      dialect;
      bugs;
      seed;
      table_count;
      max_rows;
      extra_statements;
      pivots_per_db;
      queries_per_pivot;
      max_depth;
      check_expressions;
      verify_ground_truth;
      rectify;
      coverage;
      check_non_containment;
      oracles;
      telemetry;
      trace;
      trace_capacity;
      bundle_dir;
      trace_sample;
      backend;
      guided;
    }

  let with_seed seed t = { t with seed }
  let with_guided guided t = { t with guided }
  let with_backend backend t = { t with backend }
  let with_oracles oracles t = { t with oracles }
  let with_coverage coverage t = { t with coverage }
  let with_telemetry telemetry t = { t with telemetry }
  let with_trace trace t = { t with trace }
  let with_bundle_dir bundle_dir t = { t with bundle_dir }
  let with_trace_sample trace_sample t = { t with trace_sample }
end

type config = Config.t
type stats = Stats.t

(* replay a script on a correct engine and report whether the final SELECT
   returns at least one row without error *)
let correct_engine_fetches dialect stmts =
  let session = Engine.Session.create ~bugs:Engine.Bug.empty_set dialect in
  let n = List.length stmts in
  let fetched = ref false in
  (try
     List.iteri
       (fun i stmt ->
         match Engine.Session.execute session stmt with
         | Ok (Engine.Session.Rows rs) ->
             if i = n - 1 then
               fetched := rs.Engine.Executor.rs_rows <> []
         | Ok _ | Error _ -> ())
       stmts
   with Engine.Errors.Crash _ -> ());
  !fetched

(* inverse ground truth for the non-containment variant: on a correct
   engine the final SELECT must return no row *)
let correct_engine_misses dialect stmts =
  let session = Engine.Session.create ~bugs:Engine.Bug.empty_set dialect in
  let n = List.length stmts in
  let empty = ref false in
  (try
     List.iteri
       (fun i stmt ->
         match Engine.Session.execute session stmt with
         | Ok (Engine.Session.Rows rs) ->
             if i = n - 1 then empty := rs.Engine.Executor.rs_rows = []
         | Ok _ | Error _ -> ())
       stmts
   with Engine.Errors.Crash _ -> ());
  !empty

(* ground-truth confirmation applies only to the containment kinds; the
   other oracles (error, crash, metamorphic, lint, user-defined) are their
   own witnesses *)
let confirm_report (config : Config.t) kind script =
  (not config.Config.verify_ground_truth)
  ||
  match kind with
  | Bug_report.Containment -> correct_engine_fetches config.Config.dialect script
  | Bug_report.Non_containment ->
      correct_engine_misses config.Config.dialect script
  | Bug_report.Error_oracle | Bug_report.Crash | Bug_report.Metamorphic
  | Bug_report.Lint | Bug_report.Plan_diff | Bug_report.Const_opt ->
      (* the divergence was observed directly; the two executions are
         their own witnesses *)
      true

(* flight recorder: enabled when tracing is requested or when repro
   bundles / trace samples may need to be written; otherwise the noop
   sink (one branch per record) rides along for free *)
let recorder_for (config : Config.t) =
  let open Config in
  if config.trace || config.bundle_dir <> None || config.trace_sample > 0 then
    Trace.create ~capacity:config.trace_capacity ()
  else Trace.noop

let run_round ?recorder ?bias (config : Config.t) ~db_seed : Stats.t =
  let open Config in
  let tele = config.telemetry in
  let stats = ref { Stats.empty with Stats.databases = 1 } in
  let rng = Rng.make ~seed:db_seed in
  (* the frontier accumulated across rounds (guided bias state); a local
     ref when the caller does not thread one through *)
  let bias = match bias with Some b -> b | None -> ref Frontier.empty in
  (* shape planning draws from a private stream so that guidance leaves
     the synthesis stream untouched: a guided and a blind round diverge
     only through the shape overrides themselves *)
  let guided_rng =
    if config.guided then Some (Rng.make ~seed:(db_seed + 7757)) else None
  in
  (* planner-path frontier points come from the coverage instrument: the
     delta over this round is what the round itself exercised *)
  let plan_base =
    match config.coverage with
    | None -> []
    | Some cov ->
        List.map
          (fun p -> (p, Engine.Coverage.hit_count cov p))
          (Gen_bias.plan_points config.dialect)
  in
  let recorder =
    match recorder with Some r -> r | None -> recorder_for config
  in
  Trace.begin_round recorder ~seed:db_seed ~dialect:config.dialect;
  let session =
    Engine.Session.create ~seed:db_seed ~bugs:config.bugs
      ?coverage:config.coverage ~telemetry:tele ~recorder
      ~backend:config.backend config.dialect
  in
  let ctx =
    {
      Oracle.ctx_dialect = config.dialect;
      ctx_session = session;
      ctx_db_seed = db_seed;
      (* a private stream: oracle randomness must not perturb synthesis *)
      ctx_rng = Rng.make ~seed:(db_seed + 104651);
      ctx_telemetry = tele;
    }
  in
  let log = ref [] in
  (* the funnel phase the round is currently in; stamped into reports and
     repro bundles so triage starts from where the oracle fired *)
  let phase = ref "gen_db" in
  (* whether the static-analysis self-check oracle participates; its
     observations are counted so campaign summaries show coverage *)
  let lint_enabled =
    List.exists (fun o -> String.equal (Oracle.name o) "lint") config.oracles
  in
  let plan_diff_enabled =
    List.exists
      (fun o -> String.equal (Oracle.name o) "plan_diff")
      config.oracles
  in
  let const_opt_enabled =
    List.exists
      (fun o -> String.equal (Oracle.name o) "const_opt")
      config.oracles
  in
  let record ?expected ?actual kind message =
    let stmts = List.rev !log in
    Trace.record recorder
      (Trace.Event.Oracle_fired
         { oracle = Bug_report.oracle_token kind; message; phase = !phase });
    let bundle =
      match config.bundle_dir with
      | Some dir when Trace.enabled recorder -> (
          let plan =
            match !log with
            | A.Select_stmt stmt_q :: _ ->
                Engine.Session.plan_lines session stmt_q
            | _ -> []
          in
          let b =
            {
              Trace.Bundle.b_seed = db_seed;
              b_dialect = config.dialect;
              b_oracle = Bug_report.oracle_token kind;
              b_message = message;
              b_phase = !phase;
              b_bugs =
                List.map Engine.Bug.show (Engine.Bug.to_list config.bugs);
              b_statements = stmts;
              b_expected = expected;
              b_actual = actual;
              b_plan = plan;
              b_trace_json = Trace.to_json recorder;
            }
          in
          try Some (Trace.Bundle.write ~dir b)
          with Sys_error _ | Unix.Unix_error (_, _, _) -> None)
      | _ -> None
    in
    let r =
      {
        Bug_report.dialect = config.dialect;
        oracle = kind;
        message;
        statements = stmts;
        reduced = None;
        seed = db_seed;
        phase = !phase;
        bundle;
      }
    in
    (match kind with
    | Bug_report.Lint ->
        stats :=
          {
            !stats with
            Stats.lint_diagnostics = (!stats).Stats.lint_diagnostics + 1;
          }
    | Bug_report.Plan_diff ->
        stats :=
          {
            !stats with
            Stats.plan_divergences = (!stats).Stats.plan_divergences + 1;
          }
    | Bug_report.Const_opt ->
        stats :=
          {
            !stats with
            Stats.const_divergences = (!stats).Stats.const_divergences + 1;
          }
    | _ -> ());
    stats := Stats.add_report !stats r;
    Some r
  in
  let dispatch event = Oracle.first_report config.oracles ctx event in
  (* execute one statement under the statement-level oracles; returns a
     report if one fired *)
  (* mirror an engine outcome into a flight-recorder statement event *)
  let trace_stmt stmt outcome t0 =
    if Trace.enabled recorder then begin
      let now = Telemetry.Clock.now_ns_int () in
      let oc =
        match outcome with
        | Oracle.Succeeded (Engine.Session.Rows rs) ->
            Trace.Event.Rows (List.length rs.Engine.Executor.rs_rows)
        | Oracle.Succeeded (Engine.Session.Affected n) ->
            Trace.Event.Affected n
        | Oracle.Succeeded Engine.Session.Done -> Trace.Event.Done
        | Oracle.Failed e -> Trace.Event.Error e.Engine.Errors.message
        | Oracle.Crashed msg -> Trace.Event.Crashed msg
      in
      Trace.record_at recorder ~now_ns:now
        (Trace.Event.Statement { stmt; outcome = oc; dur_ns = now - t0 })
    end
  in
  let exec stmt : Bug_report.t option =
    log := stmt :: !log;
    stats := { !stats with Stats.statements = (!stats).Stats.statements + 1 };
    let t0 = if Trace.enabled recorder then Telemetry.Clock.now_ns_int () else 0 in
    let outcome =
      match Engine.Session.execute session stmt with
      | Ok r -> Oracle.Succeeded r
      | Error e -> Oracle.Failed e
      | exception Engine.Errors.Crash msg -> Oracle.Crashed msg
    in
    trace_stmt stmt outcome t0;
    match dispatch (Oracle.Statement (stmt, outcome)) with
    | Some (kind, message) -> record kind message
    | None -> None
  in
  let rec exec_all = function
    | [] -> None
    | stmt :: rest -> (
        match exec stmt with Some r -> Some r | None -> exec_all rest)
  in
  let gen_cfg =
    Gen_db.Config.(
      make config.dialect |> with_rng rng
      |> with_table_count config.table_count
      |> with_max_rows config.max_rows
      |> with_extra_statements config.extra_statements)
  in
  (* ---- step 1: random database ---- *)
  let generation () =
    Telemetry.Span.timed tele Telemetry.Phase.Gen_db @@ fun () ->
    match exec_all (Gen_db.initial_statements gen_cfg) with
    | Some r -> Some r
    | None -> (
        (* initial data *)
        let fills =
          Schema_info.tables_of_session session
          |> List.concat_map (fun (ti : Schema_info.table_info) ->
                 List.init
                   (Rng.int_in rng 1 (max 1 (config.max_rows / 2)))
                   (fun _ ->
                     Gen_db.insert_stmt
                       ~existing_rows:
                         (Schema_info.rows_of_table session
                            ti.Schema_info.ti_name)
                       gen_cfg ti))
        in
        match exec_all fills with
        | Some r -> Some r
        | None ->
            let rec extra n =
              if n <= 0 then None
              else
                match exec_all (Gen_db.random_statements gen_cfg session) with
                | Some r -> Some r
                | None -> extra (n - 1)
            in
            let r = extra config.extra_statements in
            (match r with
            | Some _ -> r
            | None -> exec_all (Gen_db.fill_statements gen_cfg session)))
  in
  let round () =
    match generation () with
    | Some r -> Some r
    | None -> (
        phase := "database_ready";
        (* whole-database oracles (e.g. metamorphic partition checks) *)
        match dispatch Oracle.Database_ready with
        | Some (kind, message) -> record kind message
        | None ->
            phase := "containment";
            (* ---- steps 2-7 ---- *)
            let pivot_sources () =
              Telemetry.Span.timed tele Telemetry.Phase.Pivot @@ fun () ->
              let tables =
                Schema_info.tables_of_session session
                |> List.filter_map (fun (ti : Schema_info.table_info) ->
                       match
                         Schema_info.rows_of_table session
                           ti.Schema_info.ti_name
                       with
                       | [] -> None
                       | rows ->
                           (* the scan count (incl. inherited rows) is what
                              the single-row aggregate extension keys on *)
                           Some
                             ( {
                                 ti with
                                 Schema_info.ti_row_count = List.length rows;
                               },
                               rows ))
              in
              (* views join the candidate pool occasionally (paper
                 Sec. 4.2) *)
              let views =
                Schema_info.view_pivot_sources session
                |> List.filter (fun (_, rows) -> rows <> [])
              in
              if views <> [] && Rng.chance rng 0.25 then tables @ views
              else tables
            in
            let rec pivots k =
              if k <= 0 then None
              else
                match pivot_sources () with
                | [] -> None
                | sources -> (
                    stats :=
                      { !stats with Stats.pivots = (!stats).Stats.pivots + 1 };
                    (* step 2: one random row per chosen table/view *)
                    (* Guidance is strictly additive: blind iterations draw
                       from the main stream exactly as an unguided round
                       would, so every blind detection is preserved.  On
                       top, each blind query gains an extra rectified
                       conjunct rotated through cold predicate kinds, and —
                       once shape guidance has warmed up — the pivot gains
                       one extra query aimed at a cold clause combination,
                       both drawn entirely from the private stream. *)
                    let shape =
                      match guided_rng with
                      | Some grng ->
                          Gen_bias.plan ~rng:grng ~dialect:config.dialect !bias
                      | None -> None
                    in
                    let pred =
                      match (guided_rng, shape) with
                      | Some grng, None ->
                          Gen_bias.cold_pred ~rng:grng
                            ~dialect:config.dialect !bias
                          |> Option.map (fun k -> (grng, k))
                      | _ -> None
                    in
                    let chosen =
                      let k =
                        if List.length sources >= 2 && Rng.bool rng then 2
                        else 1
                      in
                      Rng.sample rng k sources
                    in
                    let pivot =
                      List.map
                        (fun ((ti : Schema_info.table_info), rows) ->
                          (ti, Rng.pick rng rows))
                        chosen
                    in
                    (* the guided extra query picks its own pivot from the
                       private stream so the shape's join arity can be
                       realized regardless of the blind pivot's *)
                    let guided_pivot =
                      match (guided_rng, shape) with
                      | Some grng, Some s ->
                          let k =
                            min
                              (max 1 s.Gen_bias.sh_tables)
                              (min 2 (List.length sources))
                          in
                          Rng.sample grng k sources
                          |> List.map
                               (fun ((ti : Schema_info.table_info), rows) ->
                                 (ti, Rng.pick grng rows))
                      | _ -> pivot
                    in
                    if Trace.enabled recorder then
                      List.iter
                        (fun ((ti : Schema_info.table_info), row) ->
                          Trace.record recorder
                            (Trace.Event.Pivot
                               {
                                 source = ti.Schema_info.ti_name;
                                 row =
                                   Array.to_list
                                     (Array.map Value.to_sql_literal row);
                               }))
                        pivot;
                    let csl =
                      Engine.Options.case_sensitive_like
                        (Engine.Session.options session)
                    in
                    let rec queries q =
                      if q <= 0 then None
                      else
                        (* iterations above queries_per_pivot are the guided
                           extra query: every draw comes from the private
                           stream, so the blind iterations stay
                           byte-identical to an unguided round *)
                        let extra = q > config.queries_per_pivot in
                        let qrng =
                          if extra then Option.get guided_rng else rng
                        in
                        let qshape = if extra then shape else None in
                        let qpivot = if extra then guided_pivot else pivot in
                        (* Section 7 extension: occasionally rectify to FALSE
                           and require the pivot row to be absent.  Restricted
                           to single-table pivots: with joins, a LEFT JOIN's
                           NULL-extended rows could coincide with the expected
                           tuple. *)
                        let negative =
                          (not extra)
                          && config.check_non_containment
                          && List.length pivot = 1
                          && Rng.chance rng 0.2
                        in
                        (* no pred conjunct on negative queries: there it
                           would rectify to FALSE, and an extra FALSE
                           conjunct can only shrink the result set — i.e.
                           it could mask a non-containment violation the
                           blind query would have caught *)
                        let qpred =
                          if extra || negative then None else pred
                        in
                        let target = if negative then Tvl.False else Tvl.True in
                        (* steps 3-5 with retries on oracle-uncomputable
                           exprs *)
                        let rec attempt tries =
                          if tries <= 0 then None
                          else
                            match
                              Gen_query.synthesize ~rectify:config.rectify
                                ~target ~telemetry:tele
                                ~exec_backend:config.backend ?shape:qshape
                                ?pred:qpred ~rng:qrng
                                ~dialect:config.dialect ~pivot:qpivot
                                ~case_sensitive_like:csl
                                ~max_depth:config.max_depth
                                  (* expression targets are unsound for the
                                     negative variant: a different row may
                                     project to the same value *)
                                ~check_expressions:
                                  (config.check_expressions && not negative)
                                ()
                            with
                            | Ok t ->
                                stats :=
                                  List.fold_left Stats.bump_truth !stats
                                    t.Gen_query.raw_truths;
                                Some t
                            | Error _ ->
                                stats :=
                                  {
                                    !stats with
                                    Stats.interp_failures =
                                      (!stats).Stats.interp_failures + 1;
                                  };
                                Telemetry.inc tele "pqs_rectify_retries_total";
                                attempt (tries - 1)
                        in
                        match attempt 5 with
                        | None -> queries (q - 1)
                        | Some t -> (
                            (* clause-combination frontier: fingerprint the
                               synthesized query and fold it into the
                               round's stats (and, when guided, the bias
                               state steering later shape plans) *)
                            let fp =
                              Frontier.of_points ~seed:db_seed
                                (Gen_bias.fingerprint t.Gen_query.query)
                            in
                            stats :=
                              {
                                !stats with
                                Stats.frontier =
                                  Frontier.union (!stats).Stats.frontier fp;
                              };
                            if config.guided then
                              bias := Frontier.union !bias fp;
                            if Trace.enabled recorder then
                              List.iter
                                (fun (raw, verdict, rectified) ->
                                  Trace.record recorder
                                    (Trace.Event.Expr
                                       { raw; verdict; rectified }))
                                (List.rev t.Gen_query.provenance);
                            stats :=
                              {
                                !stats with
                                Stats.queries = (!stats).Stats.queries + 1;
                              };
                            if negative then
                              stats :=
                                {
                                  !stats with
                                  Stats.negative_checks =
                                    (!stats).Stats.negative_checks + 1;
                                };
                            let stmt = Gen_query.containment_stmt t in
                            log := stmt :: !log;
                            stats :=
                              {
                                !stats with
                                Stats.statements =
                                  (!stats).Stats.statements + 1;
                              };
                            let drop_and_continue () =
                              log := List.tl !log;
                              queries (q - 1)
                            in
                            (* the span must cover only the engine call, not
                               the recursive continuation below *)
                            let ct0 =
                              if Trace.enabled recorder then
                                Telemetry.Clock.now_ns_int ()
                              else 0
                            in
                            let outcome =
                              Telemetry.Span.timed tele Telemetry.Phase.Containment
                                (fun () ->
                                  match
                                    Engine.Session.execute session stmt
                                  with
                                  | r -> `Res r
                                  | exception Engine.Errors.Crash msg ->
                                      `Crash msg)
                            in
                            trace_stmt stmt
                              (match outcome with
                              | `Res (Ok r) -> Oracle.Succeeded r
                              | `Res (Error e) -> Oracle.Failed e
                              | `Crash msg -> Oracle.Crashed msg)
                              ct0;
                            match outcome with
                            | `Res (Ok (Engine.Session.Rows rs)) -> (
                                let pivot_found =
                                  rs.Engine.Executor.rs_rows <> []
                                in
                                if lint_enabled then
                                  stats :=
                                    {
                                      !stats with
                                      Stats.lint_checks =
                                        (!stats).Stats.lint_checks + 1;
                                    };
                                if plan_diff_enabled then
                                  stats :=
                                    {
                                      !stats with
                                      Stats.plan_checks =
                                        (!stats).Stats.plan_checks + 1;
                                    };
                                if const_opt_enabled then
                                  stats :=
                                    {
                                      !stats with
                                      Stats.const_checks =
                                        (!stats).Stats.const_checks + 1;
                                    };
                                match
                                  dispatch
                                    (Oracle.Containment_check
                                       {
                                         Oracle.check_stmt = stmt;
                                         negative;
                                         pivot_found;
                                         check_pivot = qpivot;
                                       })
                                with
                                | Some (kind, message) ->
                                    if
                                      confirm_report config kind
                                        (List.rev !log)
                                    then
                                      let expected =
                                        "("
                                        ^ String.concat ", "
                                            (List.map Value.to_sql_literal
                                               t.Gen_query.expected_row)
                                        ^ ")"
                                      in
                                      let actual =
                                        String.concat "; "
                                          (List.map
                                             (fun r ->
                                               "("
                                               ^ String.concat ", "
                                                   (Array.to_list
                                                      (Array.map
                                                         Value.to_sql_literal r))
                                               ^ ")")
                                             rs.Engine.Executor.rs_rows)
                                      in
                                      record ~expected ~actual kind message
                                    else begin
                                      stats :=
                                        {
                                          !stats with
                                          Stats.false_positives =
                                            (!stats).Stats.false_positives + 1;
                                        };
                                      (* drop the offending query from the
                                         log *)
                                      drop_and_continue ()
                                    end
                                | None ->
                                    (* check passed: drop it from the log to
                                       keep reproduction scripts small *)
                                    drop_and_continue ())
                            | `Res (Ok _) -> drop_and_continue ()
                            | `Res (Error e) -> (
                                match
                                  dispatch
                                    (Oracle.Statement (stmt, Oracle.Failed e))
                                with
                                | Some (kind, message) -> record kind message
                                | None -> drop_and_continue ())
                            | `Crash msg -> (
                                match
                                  dispatch
                                    (Oracle.Statement
                                       (stmt, Oracle.Crashed msg))
                                with
                                | Some (kind, message) -> record kind message
                                | None -> drop_and_continue ()))
                    in
                    match
                      queries
                        (config.queries_per_pivot
                        + (match shape with Some _ -> 1 | None -> 0))
                    with
                    | Some r -> Some r
                    | None -> pivots (k - 1))
            in
            pivots config.pivots_per_db)
  in
  let fired = round () in
  (* --trace-sample N: keep the full trace of every Nth healthy round, so
     there is flight-recorder data to compare bundles against *)
  (match (fired, config.bundle_dir) with
  | None, Some dir
    when config.trace_sample > 0
         && db_seed mod config.trace_sample = 0
         && Trace.enabled recorder -> (
      try
        Trace.mkdir_p dir;
        Trace.write_text
          (Filename.concat dir
             (Printf.sprintf "round-%06d-trace.json" db_seed))
          (Trace.to_json recorder)
      with Sys_error _ | Unix.Unix_error (_, _, _) -> ())
  | _ -> ());
  (* planner-path frontier points: whatever access paths this round drove
     the coverage instrument through *)
  (match config.coverage with
  | Some cov ->
      let deltas =
        List.concat_map
          (fun (p, before) ->
            let d = Engine.Coverage.hit_count cov p - before in
            List.init (max 0 d) (fun _ -> p))
          plan_base
      in
      if deltas <> [] then begin
        let f = Frontier.of_points ~seed:db_seed deltas in
        stats :=
          {
            !stats with
            Stats.frontier = Frontier.union (!stats).Stats.frontier f;
          };
        if config.guided then bias := Frontier.union !bias f
      end
  | None -> ());
  (* volume counters are bulk-incremented from the round's [Stats] rather
     than one [inc] per statement: same exported totals, no per-statement
     registry traffic on the hot path *)
  let s = !stats in
  Telemetry.inc tele ~by:s.Stats.statements "pqs_statements_total";
  Telemetry.inc tele ~by:s.Stats.queries "pqs_queries_total";
  Telemetry.inc tele ~by:s.Stats.pivots "pqs_pivots_total";
  s

let run ?(stop_on_first = false) ~max_queries config =
  (* databases are also capped so rounds that never reach the query stage
     (e.g. generation keeps erroring) terminate *)
  let max_databases = max 50 max_queries in
  let recorder = recorder_for config in
  (* one bias ref for the whole run: guided rounds learn from everything
     the earlier rounds exercised *)
  let bias = ref Frontier.empty in
  let rec go acc i =
    if
      acc.Stats.queries >= max_queries || acc.Stats.databases >= max_databases
    then acc
    else
      let round =
        run_round ~recorder ~bias config
          ~db_seed:(config.Config.seed + (i * 7919))
      in
      let acc = Stats.merge acc round in
      if stop_on_first && round.Stats.reports <> [] then acc else go acc (i + 1)
  in
  go Stats.empty 0

let hunt config ~max_queries =
  let stats = run ~stop_on_first:true ~max_queries config in
  match stats.Stats.reports with r :: _ -> Some r | [] -> None

(* ------------------------------------------------------------------ *)
(* Parallel hunting (paper Section 3.4: one worker per database)       *)

let run_parallel ?(stop_on_first = false) ~workers ~max_queries config =
  let workers = max 1 workers in
  let per_worker = max 1 (max_queries / workers) in
  let domains =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            (* each worker gets its own seed stream and databases, like the
               paper's thread-per-database parallelization *)
            let config =
              Config.with_seed (config.Config.seed + (i * 104729)) config
            in
            run ~stop_on_first ~max_queries:per_worker config))
  in
  Stats.merge_all (List.map Domain.join domains)
