(** The constant-optimization (CODDTest-style) oracle.

    A positive containment check comes with a known satisfying assignment
    of the WHERE clause — the pivot row.  This oracle folds that
    assignment into the query as constants with {!Analysis.Simplify},
    re-executes the containment query with the simplified predicate, and
    reports a {!Bug_report.Const_opt} divergence when the pivot row
    vanishes: the simplified predicate agrees with the original on the
    pivot row, so on a correct engine the result cannot be empty.
    Registered as ["const_opt"] (flag [--const-opt]). *)

open Sqlval

(** Flatten the pivot rows of a check into folding bindings. *)
val bindings_of_pivot :
  (Schema_info.table_info * Value.t array) list ->
  Analysis.Const_fold.binding list

(** The simplified containment query plus the simplifier's provenance;
    [None] when the check is ineligible (negative polarity handled by the
    caller; aggregation / GROUP BY / HAVING / LIMIT / OFFSET in the inner
    select) or when no rewrite applied. *)
val simplified_stmt :
  Engine.Session.t ->
  pivot:(Schema_info.table_info * Value.t array) list ->
  Sqlast.Ast.query ->
  (Sqlast.Ast.query * Analysis.Simplify.result) option

(** Does the divergence manifest on this session: original containment
    query nonempty, simplified variant empty?  (The sweep and the reducer
    recheck use this; the oracle skips the first execution because the
    runner already observed the pivot row.) *)
val reproduce :
  Engine.Session.t ->
  pivot:(Schema_info.table_info * Value.t array) list ->
  Sqlast.Ast.query ->
  bool

(** The report message: simplified query SQL plus the rewrite trail. *)
val message :
  Engine.Session.t -> Sqlast.Ast.query -> Analysis.Simplify.result -> string

val oracle : ?sample_every:int -> unit -> Oracle.t
(** [sample_every] (default 8) is the throughput/coverage knob, the
    analogue of plan-diff's fan-out cap: only every [sample_every]-th
    eligible check — chosen deterministically by a structural hash of the
    statement AST, so parallel campaigns merge bit-identically — pays the
    simplify-and-re-execute cost, keeping campaign overhead inside the
    15% budget ([make constopt]).  Pass [~sample_every:1] to check every
    eligible statement (the fixture tests do). *)

(** {1 Seed-corpus sweep} *)

type sweep_result = {
  co_seeds : int;
  co_queries : int;  (** positive containment checks attempted *)
  co_checks : int;  (** checks where a rewrite applied and re-ran *)
  co_rewrites : int;  (** total rewrites across all checks *)
  co_divergences : (int * string) list;
      (** every constant-optimization divergence, tagged with its seed *)
}

(** Build a database per seed, run synthesized containment checks plus
    directed constant-folding probes through the oracle's check, and
    collect every divergence.  With [bugs] empty this must return no
    divergences (the soundness gate); with one of the constant-folding
    bugs injected it must find them.  [backend] selects the execution
    backend (default interpreted), so the soundness gate runs against
    both. *)
val sweep :
  ?queries_per_seed:int ->
  ?bugs:Engine.Bug.set ->
  ?backend:Engine.Exec_backend.kind ->
  seed_lo:int ->
  seed_hi:int ->
  Dialect.t ->
  sweep_result
