open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

type binding = {
  b_value : Value.t;
  b_type : Datatype.t;
  b_collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  case_sensitive_like : bool;
  lookup : table:string option -> column:string -> (binding, string) result;
}

let const_env ?(case_sensitive_like = false) dialect =
  {
    dialect;
    case_sensitive_like;
    lookup = (fun ~table:_ ~column -> Error ("no such column: " ^ column));
  }

let env_of_pivot ?(case_sensitive_like = false) dialect pivot =
  let lookup ~table ~column =
    let matches (ti : Schema_info.table_info) =
      match table with
      | None -> true
      | Some t ->
          String.lowercase_ascii t
          = String.lowercase_ascii ti.Schema_info.ti_name
    in
    let col = String.lowercase_ascii column in
    let hits =
      List.filter_map
        (fun ((ti : Schema_info.table_info), values) ->
          if not (matches ti) then None
          else
            let rec go i = function
              | [] -> None
              | (c : Schema_info.column_info) :: rest ->
                  if String.lowercase_ascii c.Schema_info.ci_name = col then
                    Some
                      {
                        b_value = values.(i);
                        b_type = c.Schema_info.ci_type;
                        b_collation = c.Schema_info.ci_collation;
                      }
                  else go (i + 1) rest
            in
            go 0 ti.Schema_info.ti_columns)
        pivot
    in
    match hits with
    | [ b ] -> Ok b
    | [] -> Error ("no such column: " ^ column)
    | _ :: _ -> Error ("ambiguous column name: " ^ column)
  in
  { dialect; case_sensitive_like; lookup }

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

let is_sqlite env = Dialect.equal env.dialect Dialect.Sqlite_like
let is_mysql env = Dialect.equal env.dialect Dialect.Mysql_like
let is_pg env = Dialect.equal env.dialect Dialect.Postgres_like

let truth env (v : Value.t) : (Tvl.t, string) result =
  Coerce.to_tvl env.dialect v

let encode env (t : Tvl.t) : Value.t =
  if is_pg env then
    match t with
    | Tvl.True -> Value.Bool true
    | Tvl.False -> Value.Bool false
    | Tvl.Unknown -> Value.Null
  else
    match t with
    | Tvl.True -> Value.Int 1L
    | Tvl.False -> Value.Int 0L
    | Tvl.Unknown -> Value.Null

let rec meta_of env (e : A.expr) : (Datatype.t * Collation.t) option =
  match e with
  | A.Col { table; column } -> (
      match env.lookup ~table ~column with
      | Ok b -> Some (b.b_type, b.b_collation)
      | Error _ -> None)
  | A.Collate (inner, c) -> (
      match meta_of env inner with
      | Some (dt, _) -> Some (dt, c)
      | None -> Some (Datatype.Any, c))
  | A.Cast (ty, _) -> Some (ty, Collation.Binary)
  | A.Unary (A.Pos, inner) -> meta_of env inner
  | _ -> None

let rec coll_of env (e : A.expr) : Collation.t option =
  match e with
  | A.Collate (_, c) -> Some c
  | A.Col _ -> (
      match meta_of env e with
      | Some (_, c) when not (Collation.equal c Collation.Binary) -> Some c
      | _ -> None)
  | A.Unary (A.Pos, inner) -> coll_of env inner
  | _ -> None

let cmp_collation env a b =
  match coll_of env a with
  | Some c -> c
  | None -> ( match coll_of env b with Some c -> c | None -> Collation.Binary)

let affinity_adjust env ea eb va vb =
  let aff e = Option.map (fun (dt, _) -> Datatype.affinity dt) (meta_of env e) in
  let numericish = function
    | Some Datatype.A_integer | Some Datatype.A_real | Some Datatype.A_numeric ->
        true
    | _ -> false
  in
  let textish a = a = Some Datatype.A_text in
  let aa = aff ea and ab = aff eb in
  let to_num v =
    match v with
    | Value.Text _ | Value.Blob _ -> Coerce.apply_affinity Datatype.A_numeric v
    | _ -> v
  in
  let to_text v =
    match v with
    | Value.Int _ | Value.Real _ -> Coerce.apply_affinity Datatype.A_text v
    | _ -> v
  in
  if numericish aa && not (numericish ab) then (va, to_num vb)
  else if numericish ab && not (numericish aa) then (to_num va, vb)
  else if textish aa && ab = None then (va, to_text vb)
  else if textish ab && aa = None then (to_text va, vb)
  else (va, vb)

let pg_comparable a b =
  let open Value in
  match (storage_class a, storage_class b) with
  | C_null, _ | _, C_null -> true
  | (C_int | C_real), (C_int | C_real) -> true
  | C_text, C_text | C_blob, C_blob | C_bool, C_bool -> true
  | _ -> false

let mysql_cmp_values a b =
  match (a, b) with
  | Value.Text _, Value.Text _ | Value.Blob _, Value.Blob _ -> (a, b)
  | _ -> (Coerce.to_numeric a, Coerce.to_numeric b)

(* ------------------------------------------------------------------ *)
(* main interpreter                                                    *)

let rec eval env (e : A.expr) : (Value.t, string) result =
  match e with
  | A.Lit v -> Ok v
  | A.Col { table; column } ->
      let* b = env.lookup ~table ~column in
      Ok b.b_value
  | A.Collate (inner, _) -> eval env inner
  | A.Unary (op, inner) -> unary env op inner
  | A.Binary (op, a, b) -> binary env op a b
  | A.Is { negated; arg; rhs } -> is_pred env ~negated arg rhs
  | A.Between { negated; arg; lo; hi } -> between env ~negated arg lo hi
  | A.In_list { negated; arg; list } -> in_list env ~negated arg list
  | A.Like { negated; arg; pattern; escape } ->
      like env ~negated arg pattern escape
  | A.Glob { negated; arg; pattern } -> glob env ~negated arg pattern
  | A.Cast (ty, inner) ->
      let* v = eval env inner in
      Coerce.cast env.dialect ty v
  | A.Func (f, args) -> func env f args
  | A.Agg _ -> Error "aggregate in oracle interpreter"
  | A.Case { operand; branches; else_ } -> case env operand branches else_

and eval_tvl env e =
  let* v = eval env e in
  truth env v

and unary env op inner =
  match op with
  | A.Not ->
      let* t = eval_tvl env inner in
      Ok (encode env (Tvl.not_ t))
  | A.Pos -> eval env inner
  | A.Neg -> (
      let* v = eval env inner in
      if Value.is_null v then Ok Value.Null
      else if is_pg env then
        match v with
        | Value.Int i -> (
            match Numeric.checked_neg i with
            | Some r -> Ok (Value.Int r)
            | None -> Error "BIGINT value is out of range")
        | Value.Real r -> Ok (Value.Real (-.r))
        | _ -> Error "operator does not exist: - non-numeric"
      else
        match Coerce.to_numeric v with
        | Value.Int i -> (
            match Numeric.checked_neg i with
            | Some r -> Ok (Value.Int r)
            | None -> Ok (Value.Real 9.223372036854775808e18))
        | Value.Real r -> Ok (Value.Real (-.r))
        | _ -> Ok Value.Null)
  | A.Bit_not -> (
      let* v = eval env inner in
      if Value.is_null v then Ok Value.Null
      else if is_pg env then
        match v with
        | Value.Int i -> Ok (Value.Int (Int64.lognot i))
        | _ -> Error "~ requires integer"
      else
        match Coerce.sqlite_cast_int v with
        | Value.Int i -> Ok (Value.Int (Int64.lognot i))
        | _ -> Ok Value.Null)

and compare_tvl env op ea eb va vb : (Tvl.t, string) result =
  let coll = cmp_collation env ea eb in
  let null_safe = op = A.Null_safe_eq in
  if null_safe then begin
    if is_pg env && not (pg_comparable va vb) then
      Error "operator does not exist (mismatched types)"
    else
      let eq =
        match (va, vb) with
        | Value.Null, Value.Null -> true
        | Value.Null, _ | _, Value.Null -> false
        | _ ->
            let va, vb =
              if is_sqlite env then affinity_adjust env ea eb va vb
              else if is_mysql env then mysql_cmp_values va vb
              else (va, vb)
            in
            Value.compare_total ~collation:coll va vb = 0
      in
      Ok (Tvl.of_bool eq)
  end
  else if Value.is_null va || Value.is_null vb then Ok Tvl.Unknown
  else if is_pg env && not (pg_comparable va vb) then
    Error "operator does not exist (mismatched types)"
  else
    let va, vb =
      if is_sqlite env then affinity_adjust env ea eb va vb
      else if is_mysql env then mysql_cmp_values va vb
      else (va, vb)
    in
    let c = Value.compare_total ~collation:coll va vb in
    let holds =
      match op with
      | A.Eq -> c = 0
      | A.Neq -> c <> 0
      | A.Lt -> c < 0
      | A.Le -> c <= 0
      | A.Gt -> c > 0
      | A.Ge -> c >= 0
      | _ -> invalid_arg "compare_tvl"
    in
    Ok (Tvl.of_bool holds)

and binary env op a b =
  match op with
  | A.And ->
      let* ta = eval_tvl env a in
      if Tvl.equal ta Tvl.False then Ok (encode env Tvl.False)
      else
        let* tb = eval_tvl env b in
        Ok (encode env (Tvl.and_ ta tb))
  | A.Or ->
      let* ta = eval_tvl env a in
      if Tvl.equal ta Tvl.True then Ok (encode env Tvl.True)
      else
        let* tb = eval_tvl env b in
        Ok (encode env (Tvl.or_ ta tb))
  | A.Concat when is_mysql env -> binary env A.Or a b
  | A.Concat ->
      let* va = eval env a in
      let* vb = eval env b in
      if Value.is_null va || Value.is_null vb then Ok Value.Null
      else
        Ok
          (Value.Text
             (Coerce.to_text env.dialect va ^ Coerce.to_text env.dialect vb))
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge | A.Null_safe_eq ->
      let* va = eval env a in
      let* vb = eval env b in
      let* t = compare_tvl env op a b va vb in
      Ok (encode env t)
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem -> arith env op a b
  | A.Bit_and | A.Bit_or | A.Shift_left | A.Shift_right -> bitop env op a b

and arith env op ea eb =
  let* va = eval env ea in
  let* vb = eval env eb in
  if Value.is_null va || Value.is_null vb then Ok Value.Null
  else
    let* na, nb =
      if is_pg env then
        let num v =
          match v with
          | Value.Int _ | Value.Real _ -> Ok v
          | _ -> Error "operator does not exist (non-numeric operand)"
        in
        let* x = num va in
        let* y = num vb in
        Ok (x, y)
      else Ok (Coerce.to_numeric va, Coerce.to_numeric vb)
    in
    let as_real x y f =
      let fx = match x with Value.Int i -> Int64.to_float i | Value.Real r -> r | _ -> 0.0 in
      let fy = match y with Value.Int i -> Int64.to_float i | Value.Real r -> r | _ -> 0.0 in
      f fx fy
    in
    match (na, nb) with
    | Value.Int x, Value.Int y -> (
        let overflowed real_op =
          if is_sqlite env then
            Ok (Value.Real (as_real na nb real_op))
          else Error "BIGINT value is out of range"
        in
        match op with
        | A.Add -> (
            match Numeric.checked_add x y with
            | Some r -> Ok (Value.Int r)
            | None -> overflowed ( +. ))
        | A.Sub -> (
            match Numeric.checked_sub x y with
            | Some r -> Ok (Value.Int r)
            | None -> overflowed ( -. ))
        | A.Mul -> (
            match Numeric.checked_mul x y with
            | Some r -> Ok (Value.Int r)
            | None -> overflowed ( *. ))
        | A.Div ->
            if is_mysql env then
              if y = 0L then Ok Value.Null
              else Ok (Value.Real (Int64.to_float x /. Int64.to_float y))
            else if y = 0L then
              if is_pg env then Error "division by zero" else Ok Value.Null
            else if x = Int64.min_int && y = -1L then
              if is_pg env then Error "BIGINT value is out of range"
              else Ok (Value.Real 9.223372036854775808e18)
            else Ok (Value.Int (Int64.div x y))
        | A.Rem ->
            if y = 0L then
              if is_pg env then Error "division by zero" else Ok Value.Null
            else if x = Int64.min_int && y = -1L then Ok (Value.Int 0L)
            else Ok (Value.Int (Int64.rem x y))
        | _ -> invalid_arg "arith")
    | (Value.Int _ | Value.Real _), (Value.Int _ | Value.Real _) -> (
        let f op x y =
          match op with
          | A.Add -> x +. y
          | A.Sub -> x -. y
          | A.Mul -> x *. y
          | A.Div -> x /. y
          | A.Rem -> Float.rem x y
          | _ -> invalid_arg "arith"
        in
        match op with
        | (A.Div | A.Rem) when as_real na nb (fun _ y -> y) = 0.0 ->
            if is_pg env then Error "division by zero" else Ok Value.Null
        | _ -> Ok (Value.Real (as_real na nb (f op))))
    | _ -> Ok Value.Null

and bitop env op ea eb =
  let* va = eval env ea in
  let* vb = eval env eb in
  if Value.is_null va || Value.is_null vb then Ok Value.Null
  else if is_pg env then
    match (va, vb) with
    | Value.Int x, Value.Int y -> (
        match op with
        | A.Bit_and -> Ok (Value.Int (Int64.logand x y))
        | A.Bit_or -> Ok (Value.Int (Int64.logor x y))
        | A.Shift_left ->
            if y < 0L || y > 63L then Ok (Value.Int 0L)
            else Ok (Value.Int (Int64.shift_left x (Int64.to_int y)))
        | A.Shift_right ->
            if y < 0L || y > 63L then Ok (Value.Int 0L)
            else Ok (Value.Int (Int64.shift_right x (Int64.to_int y)))
        | _ -> invalid_arg "bitop")
    | _ -> Error "operator does not exist (bitop on non-integers)"
  else
    match (Coerce.sqlite_cast_int va, Coerce.sqlite_cast_int vb) with
    | Value.Int x, Value.Int y -> (
        let shift dir x y =
          let y, dir = if y < 0L then (Int64.neg y, not dir) else (y, dir) in
          if y > 63L then 0L
          else if dir then Int64.shift_left x (Int64.to_int y)
          else Int64.shift_right x (Int64.to_int y)
        in
        match op with
        | A.Bit_and -> Ok (Value.Int (Int64.logand x y))
        | A.Bit_or -> Ok (Value.Int (Int64.logor x y))
        | A.Shift_left -> Ok (Value.Int (shift true x y))
        | A.Shift_right -> Ok (Value.Int (shift false x y))
        | _ -> invalid_arg "bitop")
    | _ -> Ok Value.Null

and is_pred env ~negated arg rhs =
  let finish t =
    let t = if negated then Tvl.not_ t else t in
    Ok (encode env t)
  in
  match rhs with
  | A.Is_null ->
      let* v = eval env arg in
      finish (Tvl.of_bool (Value.is_null v))
  | A.Is_true | A.Is_false -> (
      let* v = eval env arg in
      match v with
      | Value.Null -> finish Tvl.False
      | _ ->
          let want = match rhs with A.Is_true -> Tvl.True | _ -> Tvl.False in
          let* t = truth env v in
          finish (Tvl.of_bool (Tvl.equal t want)))
  | A.Is_expr other ->
      if not (is_sqlite env) then Error "IS over scalars is sqlite-specific"
      else
        let* va = eval env arg in
        let* vb = eval env other in
        let* t = compare_tvl env A.Null_safe_eq arg other va vb in
        finish t
  | A.Is_distinct_from other ->
      if not (is_pg env) then Error "IS DISTINCT FROM is postgres-specific"
      else
        let* va = eval env arg in
        let* vb = eval env other in
        let* t = compare_tvl env A.Null_safe_eq arg other va vb in
        finish (Tvl.not_ t)

and between env ~negated arg lo hi =
  let coll =
    match coll_of env arg with
    | Some c -> c
    | None -> cmp_collation env lo hi
  in
  let* v = eval env arg in
  let* vl = eval env lo in
  let* vh = eval env hi in
  if is_pg env && not (pg_comparable v vl && pg_comparable v vh) then
    Error "operator does not exist (mismatched types)"
  else
    let cmp x ex y ey =
      if Value.is_null x || Value.is_null y then None
      else
        let x, y =
          if is_sqlite env then affinity_adjust env ex ey x y
          else if is_mysql env then mysql_cmp_values x y
          else (x, y)
        in
        Some (Value.compare_total ~collation:coll x y)
    in
    let ge_lo =
      match cmp v arg vl lo with
      | None -> Tvl.Unknown
      | Some c -> Tvl.of_bool (c >= 0)
    in
    let le_hi =
      match cmp v arg vh hi with
      | None -> Tvl.Unknown
      | Some c -> Tvl.of_bool (c <= 0)
    in
    let t = Tvl.and_ ge_lo le_hi in
    let t = if negated then Tvl.not_ t else t in
    Ok (encode env t)

and in_list env ~negated arg list =
  let* v = eval env arg in
  if Value.is_null v then Ok (encode env Tvl.Unknown)
  else
    let rec walk saw_null = function
      | [] -> Ok (if saw_null then Tvl.Unknown else Tvl.False)
      | item :: rest ->
          let* vi = eval env item in
          if Value.is_null vi then walk true rest
          else
            let* t = compare_tvl env A.Eq arg item v vi in
            if Tvl.equal t Tvl.True then Ok Tvl.True else walk saw_null rest
    in
    let* t = walk false list in
    let t = if negated then Tvl.not_ t else t in
    Ok (encode env t)

and like env ~negated arg pattern escape =
  let* v = eval env arg in
  let* p = eval env pattern in
  let* esc =
    match escape with
    | None -> Ok None
    | Some e -> (
        let* ve = eval env e in
        match ve with
        | Value.Text s when String.length s = 1 -> Ok (Some s.[0])
        | Value.Null -> Ok None
        | _ -> Error "ESCAPE expression must be a single character")
  in
  if Value.is_null v || Value.is_null p then Ok (encode env Tvl.Unknown)
  else if
    is_pg env
    && not
         (match (v, p) with
         | Value.Text _, Value.Text _ -> true
         | _ -> false)
  then Error "operator does not exist (LIKE on non-text)"
  else
    let case_sensitive =
      match env.dialect with
      | Dialect.Postgres_like -> true
      | Dialect.Mysql_like -> false
      | Dialect.Sqlite_like -> env.case_sensitive_like
    in
    let matched =
      Like_matcher.like ~case_sensitive ?escape:esc
        ~pattern:(Coerce.to_text env.dialect p)
        (Coerce.to_text env.dialect v)
    in
    let t = Tvl.of_bool matched in
    Ok (encode env (if negated then Tvl.not_ t else t))

and glob env ~negated arg pattern =
  if not (is_sqlite env) then Error "GLOB is sqlite-specific"
  else
    let* v = eval env arg in
    let* p = eval env pattern in
    if Value.is_null v || Value.is_null p then Ok (encode env Tvl.Unknown)
    else
      let matched =
        Like_matcher.glob
          ~pattern:(Coerce.to_text env.dialect p)
          (Coerce.to_text env.dialect v)
      in
      let t = Tvl.of_bool matched in
      Ok (encode env (if negated then Tvl.not_ t else t))

and case env operand branches else_ =
  match operand with
  | None ->
      let rec walk = function
        | [] -> ( match else_ with Some e -> eval env e | None -> Ok Value.Null)
        | (cond, result) :: rest ->
            let* t = eval_tvl env cond in
            if Tvl.equal t Tvl.True then eval env result else walk rest
      in
      walk branches
  | Some op_expr ->
      let* v = eval env op_expr in
      let rec walk = function
        | [] -> ( match else_ with Some e -> eval env e | None -> Ok Value.Null)
        | (cond, result) :: rest ->
            let* vc = eval env cond in
            let* t = compare_tvl env A.Eq op_expr cond v vc in
            if Tvl.equal t Tvl.True then eval env result else walk rest
      in
      walk branches

(* ---- scalar functions: correct reference semantics ---- *)

and func env f args =
  let available =
    match (f, env.dialect) with
    | (A.F_typeof | A.F_quote), Dialect.Sqlite_like -> true
    | (A.F_typeof | A.F_quote), _ -> false
    | A.F_ifnull, (Dialect.Sqlite_like | Dialect.Mysql_like) -> true
    | A.F_ifnull, Dialect.Postgres_like -> false
    | A.F_instr, (Dialect.Sqlite_like | Dialect.Mysql_like) -> true
    | A.F_instr, Dialect.Postgres_like -> false
    | (A.F_least | A.F_greatest), (Dialect.Mysql_like | Dialect.Postgres_like)
      ->
        true
    | (A.F_least | A.F_greatest), Dialect.Sqlite_like -> false
    | _ -> true
  in
  if not available then Error "no such function in this dialect"
  else
    let* vs =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest ->
            let* v = eval env a in
            go (v :: acc) rest
      in
      go [] args
    in
    apply env f vs args

and apply env f vs arg_exprs =
  let strict = is_pg env in
  let text v = Coerce.to_text env.dialect v in
  let any_null = List.exists Value.is_null vs in
  let null_or k = if any_null then Ok Value.Null else k () in
  match (f, vs) with
  | A.F_abs, [ v ] ->
      null_or (fun () ->
          if strict && not (Value.is_numeric v) then Error "abs(non-numeric)"
          else
            match Coerce.to_numeric v with
            | Value.Int i ->
                if i = Int64.min_int then
                  if is_sqlite env then Error "integer overflow"
                  else Error "BIGINT value is out of range"
                else Ok (Value.Int (Int64.abs i))
            | Value.Real r -> Ok (Value.Real (Float.abs r))
            | _ -> Ok (Value.Int 0L))
  | A.F_length, [ v ] ->
      null_or (fun () ->
          match v with
          | Value.Text s | Value.Blob s ->
              Ok (Value.Int (Int64.of_int (String.length s)))
          | _ ->
              if strict then Error "length(non-text)"
              else Ok (Value.Int (Int64.of_int (String.length (text v)))))
  | A.F_lower, [ v ] ->
      null_or (fun () ->
          if strict && not (match v with Value.Text _ -> true | _ -> false)
          then Error "lower(non-text)"
          else Ok (Value.Text (String.lowercase_ascii (text v))))
  | A.F_upper, [ v ] ->
      null_or (fun () ->
          if strict && not (match v with Value.Text _ -> true | _ -> false)
          then Error "upper(non-text)"
          else Ok (Value.Text (String.uppercase_ascii (text v))))
  | A.F_coalesce, [] -> Error "COALESCE needs arguments"
  | A.F_coalesce, vs -> (
      match List.find_opt (fun v -> not (Value.is_null v)) vs with
      | Some v -> Ok v
      | None -> Ok Value.Null)
  | A.F_ifnull, [ a; b ] -> Ok (if Value.is_null a then b else a)
  | A.F_nullif, [ a; b ] ->
      if Value.is_null a then Ok Value.Null
      else if Value.is_null b then Ok a
      else
        let coll =
          match (arg_exprs, arg_exprs) with
          | a0 :: b0 :: _, _ -> cmp_collation env a0 b0
          | _ -> Collation.Binary
        in
        if Value.compare_total ~collation:coll a b = 0 then Ok Value.Null
        else Ok a
  | A.F_typeof, [ v ] ->
      Ok
        (Value.Text
           (match v with
           | Value.Null -> "null"
           | Value.Int _ -> "integer"
           | Value.Real _ -> "real"
           | Value.Text _ -> "text"
           | Value.Blob _ -> "blob"
           | Value.Bool _ -> "integer"))
  | A.F_trim, [ v ] ->
      null_or (fun () ->
          if strict && not (match v with Value.Text _ -> true | _ -> false)
          then Error "trim(non-text)"
          else begin
            (* spaces only, unlike String.trim *)
            let s = text v in
            let n = String.length s in
            let i = ref 0 and j = ref n in
            while !i < n && s.[!i] = ' ' do incr i done;
            while !j > !i && s.[!j - 1] = ' ' do decr j done;
            Ok (Value.Text (String.sub s !i (!j - !i)))
          end)
  | A.F_ltrim, [ v ] ->
      null_or (fun () ->
          if strict && not (match v with Value.Text _ -> true | _ -> false)
          then Error "ltrim(non-text)"
          else
            let s = text v in
            let n = String.length s in
            let i = ref 0 in
            while !i < n && s.[!i] = ' ' do incr i done;
            Ok (Value.Text (String.sub s !i (n - !i))))
  | A.F_rtrim, [ v ] ->
      null_or (fun () ->
          if strict && not (match v with Value.Text _ -> true | _ -> false)
          then Error "rtrim(non-text)"
          else
            let s = text v in
            let j = ref (String.length s) in
            while !j > 0 && s.[!j - 1] = ' ' do decr j done;
            Ok (Value.Text (String.sub s 0 !j)))
  | A.F_substr, (v :: rest as all) when List.length all >= 2 && List.length all <= 3 ->
      null_or (fun () ->
          let s = text v in
          let nums =
            List.map
              (fun x ->
                match Coerce.to_numeric x with
                | Value.Int i -> Int64.to_int i
                | Value.Real r -> int_of_float r
                | _ -> 0)
              rest
          in
          let len = String.length s in
          let start, count =
            match nums with
            | [ st ] -> (st, len)
            | [ st; ct ] -> (st, ct)
            | _ -> (1, len)
          in
          let start0 =
            if start > 0 then start - 1
            else if start < 0 then max 0 (len + start)
            else 0
          in
          let count = max 0 count in
          let start0 = min start0 len in
          let count = min count (len - start0) in
          Ok (Value.Text (String.sub s start0 count)))
  | A.F_replace, [ s; f_; t_ ] ->
      null_or (fun () ->
          let s = text s and f_ = text f_ and t_ = text t_ in
          if f_ = "" then Ok (Value.Text s)
          else begin
            let buf = Buffer.create (String.length s) in
            let flen = String.length f_ in
            let i = ref 0 in
            while !i <= String.length s - flen do
              if String.sub s !i flen = f_ then begin
                Buffer.add_string buf t_;
                i := !i + flen
              end
              else begin
                Buffer.add_char buf s.[!i];
                incr i
              end
            done;
            Buffer.add_string buf (String.sub s !i (String.length s - !i));
            Ok (Value.Text (Buffer.contents buf))
          end)
  | A.F_instr, [ hay; needle ] ->
      null_or (fun () ->
          let h = text hay and n = text needle in
          let hl = String.length h and nl = String.length n in
          let rec find i =
            if i + nl > hl then 0
            else if String.sub h i nl = n then i + 1
            else find (i + 1)
          in
          Ok (Value.Int (Int64.of_int (find 0))))
  | A.F_hex, [ v ] ->
      null_or (fun () ->
          let s = text v in
          let buf = Buffer.create (2 * String.length s) in
          String.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c)))
            s;
          Ok (Value.Text (Buffer.contents buf)))
  | A.F_round, (v :: rest as all) when List.length all >= 1 && List.length all <= 2 ->
      null_or (fun () ->
          if strict && not (Value.is_numeric v) then Error "round(non-numeric)"
          else
            let digits =
              match rest with
              | [ d ] -> (
                  match Coerce.to_numeric d with
                  | Value.Int i -> Int64.to_int i
                  | Value.Real r -> int_of_float r
                  | _ -> 0)
              | _ -> 0
            in
            match Coerce.to_numeric v with
            | Value.Int i -> Ok (Value.Real (Int64.to_float i))
            | Value.Real r ->
                let scale = 10.0 ** float_of_int (max 0 digits) in
                Ok (Value.Real (Float.round (r *. scale) /. scale))
            | _ -> Ok (Value.Real 0.0))
  | A.F_sign, [ v ] ->
      null_or (fun () ->
          match Coerce.to_numeric v with
          | Value.Int i -> Ok (Value.Int (Int64.of_int (compare i 0L)))
          | Value.Real r -> Ok (Value.Int (Int64.of_int (compare r 0.0)))
          | _ -> Ok Value.Null)
  | (A.F_least | A.F_greatest), [] -> Error "LEAST/GREATEST need arguments"
  | (A.F_least | A.F_greatest), vs ->
      let non_null = List.filter (fun v -> not (Value.is_null v)) vs in
      if is_mysql env && List.length non_null <> List.length vs then
        Ok Value.Null
      else if non_null = [] then Ok Value.Null
      else
        let keep =
          match f with A.F_least -> fun c -> c < 0 | _ -> fun c -> c > 0
        in
        Ok
          (List.fold_left
             (fun acc v -> if keep (Value.compare_total v acc) then v else acc)
             (List.hd non_null) (List.tl non_null))
  | A.F_quote, [ v ] -> Ok (Value.Text (Value.to_sql_literal v))
  | _, _ -> Error "wrong number of arguments"

(* ------------------------------------------------------------------ *)
(* compiled containment checks                                         *)

(* The rectifier evaluates an expression, then re-evaluates a decorated
   form of the same expression (NOT e, e IS NULL) to double-check its own
   output — under the tree walker that is up to three full AST walks per
   pivot.  A compiled check shares one memoized evaluation of the base
   expression and derives the decorated forms by value-level combinators
   whose semantics provably match the corresponding AST nodes:

   - [not_]: [unary env A.Not e] is [encode (not (truth (eval e)))];
   - [is_null]: [is_pred ~negated:false e A.Is_null] is
     [encode (of_bool (is_null (eval e)))];

   so rectification's postcondition still checks real evaluations, just
   without walking [e] again. *)
module Compiled = struct
  type t = { value : (Value.t, string) result Lazy.t; env : env }

  let compile env e = { value = lazy (eval env e); env }
  let value t = Lazy.force t.value

  let tvl t =
    let* v = value t in
    truth t.env v

  let not_ t =
    {
      t with
      value =
        lazy
          (let* tv = tvl t in
           Ok (encode t.env (Tvl.not_ tv)));
    }

  let is_null t =
    {
      t with
      value =
        lazy
          (let* v = value t in
           Ok (encode t.env (Tvl.of_bool (Value.is_null v))));
    }
end
