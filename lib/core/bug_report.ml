open Sqlval

type oracle =
  | Containment
  | Non_containment
  | Error_oracle
  | Crash
  | Metamorphic
  | Lint
[@@deriving show { with_path = false }, eq]

(* the negative variant reports under the same Table 3 column *)
let oracle_label = function
  | Containment | Non_containment -> "Contains"
  | Error_oracle -> "Error"
  | Crash -> "SEGFAULT"
  | Metamorphic -> "Metamorphic"
  | Lint -> "Lint"

type t = {
  dialect : Dialect.t;
  oracle : oracle;
  message : string;
  statements : Sqlast.Ast.stmt list;
  reduced : Sqlast.Ast.stmt list option;
  seed : int;
}

let effective_statements t = Option.value ~default:t.statements t.reduced

let script t =
  Sqlast.Sql_printer.script t.dialect (effective_statements t)

let loc t = List.length (effective_statements t)

let pp fmt t =
  Format.fprintf fmt "[%s/%s] %s (seed %d)@.%s@."
    (Dialect.display_name t.dialect)
    (oracle_label t.oracle) t.message t.seed (script t)
