open Sqlval

type oracle =
  | Containment
  | Non_containment
  | Error_oracle
  | Crash
  | Metamorphic
  | Lint
  | Plan_diff
  | Const_opt
[@@deriving show { with_path = false }, eq]

(* the negative variant reports under the same Table 3 column *)
let oracle_label = function
  | Containment | Non_containment -> "Contains"
  | Error_oracle -> "Error"
  | Crash -> "SEGFAULT"
  | Metamorphic -> "Metamorphic"
  | Lint -> "Lint"
  | Plan_diff -> "PlanDiff"
  | Const_opt -> "ConstOpt"

(* stable machine-readable tokens, round-tripped through repro-bundle
   headers by the replay harness *)
let oracle_token = function
  | Containment -> "containment"
  | Non_containment -> "non_containment"
  | Error_oracle -> "error"
  | Crash -> "crash"
  | Metamorphic -> "metamorphic"
  | Lint -> "lint"
  | Plan_diff -> "plan_diff"
  | Const_opt -> "const_opt"

let oracle_of_token = function
  | "containment" -> Some Containment
  | "non_containment" -> Some Non_containment
  | "error" -> Some Error_oracle
  | "crash" -> Some Crash
  | "metamorphic" -> Some Metamorphic
  | "lint" -> Some Lint
  | "plan_diff" -> Some Plan_diff
  | "const_opt" -> Some Const_opt
  | _ -> None

type t = {
  dialect : Dialect.t;
  oracle : oracle;
  message : string;
  statements : Sqlast.Ast.stmt list;
  reduced : Sqlast.Ast.stmt list option;
  seed : int;
  phase : string;
  bundle : string option;
}

let effective_statements t = Option.value ~default:t.statements t.reduced

let script t =
  Sqlast.Sql_printer.script t.dialect (effective_statements t)

let loc t = List.length (effective_statements t)

let fingerprint t =
  Digest.to_hex (Digest.string (oracle_token t.oracle ^ "\n" ^ script t))

let pp fmt t =
  Format.fprintf fmt "[%s/%s] %s (seed %d, phase %s)@."
    (Dialect.display_name t.dialect)
    (oracle_label t.oracle) t.message t.seed
    (if t.phase = "" then "?" else t.phase);
  (match t.bundle with
  | Some path -> Format.fprintf fmt "bundle: %s@." path
  | None -> ());
  Format.fprintf fmt "%s@." (script t)
