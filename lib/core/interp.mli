(** The PQS oracle interpreter (paper Section 3.2, Algorithm 2).

    Evaluates a randomly generated expression against the pivot row,
    substituting column references by the pivot's values.  This is the
    ground truth the containment oracle relies on: it implements the
    *correct* dialect semantics, carries no bug injections, and shares no
    evaluation code with {!Engine.Eval} (only the leaf value primitives of
    [sqlval]).  A property test asserts agreement with the engine when the
    engine's bug set is empty.

    As the paper notes, the interpreter is deliberately naive — it operates
    on single literals, so neither query planning nor performance matter. *)

open Sqlval

type binding = {
  b_value : Value.t;
  b_type : Datatype.t;
  b_collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  case_sensitive_like : bool;
  lookup : table:string option -> column:string -> (binding, string) result;
}

val const_env : ?case_sensitive_like:bool -> Dialect.t -> env

(** Environment over one pivot row per table: unqualified columns resolve
    across all tables (ambiguity is an error, as in SQL). *)
val env_of_pivot :
  ?case_sensitive_like:bool ->
  Dialect.t ->
  (Schema_info.table_info * Value.t array) list ->
  env

val eval : env -> Sqlast.Ast.expr -> (Value.t, string) result
val eval_tvl : env -> Sqlast.Ast.expr -> (Tvl.t, string) result

(** Compiled containment checks: evaluate an expression once, memoize the
    result, and derive the truth values of its rectified decorations
    ([NOT e], [e IS NULL]) from the memoized value instead of re-walking
    the AST.  The combinators are value-level translations of the
    corresponding AST nodes, so a {!Compiled.t} always agrees with
    {!eval} on the equivalent expression; {!Rectify} still performs its
    postcondition check against them. *)
module Compiled : sig
  type t

  (** Translate [e] under [env] into a compiled check.  Evaluation is
      deferred and memoized: forcing {!value} (or {!tvl}) walks the AST
      at most once for the lifetime of the value. *)
  val compile : env -> Sqlast.Ast.expr -> t

  val value : t -> (Value.t, string) result
  val tvl : t -> (Tvl.t, string) result

  (** The compiled form of [A.Unary (A.Not, e)], sharing [e]'s memoized
      evaluation. *)
  val not_ : t -> t

  (** The compiled form of [A.Is { negated = false; arg = e; rhs =
      A.Is_null }], sharing [e]'s memoized evaluation. *)
  val is_null : t -> t
end
