(** Expression rectification (paper Algorithm 3).

    Given the pivot-row environment, modify a random expression so that it
    is guaranteed to evaluate to TRUE: keep it if it already does, negate
    it if FALSE, and wrap it in [IS NULL] if NULL.  Works for any logic
    system representable in {!Sqlval.Tvl} (the paper notes the same step
    adapts to e.g. four-valued logics). *)

(** [rectify env e] returns the rectified expression together with the
    truth value the raw expression had (used by the evaluation's
    rectification-rate statistics), or an error when the oracle
    interpreter cannot evaluate [e].  With an enabled [?telemetry]
    registry the call is timed into [pqs_phase_seconds{phase="rectify"}]
    (its interpreter calls also into [phase="interp"]), and postcondition
    failures bump [pqs_rectify_postcondition_failures_total].

    [backend] (default [Interpreted]) selects how the pivot containment
    check evaluates: the tree walker re-walks the expression for the
    postcondition re-check, while [Compiled] translates it once
    ({!Interp.Compiled}) and derives the re-check from the memoized
    value.  Both produce the identical rectified AST and truth value;
    the postcondition check runs either way. *)
val rectify :
  ?telemetry:Telemetry.t ->
  ?backend:Engine.Exec_backend.kind ->
  Interp.env ->
  Sqlast.Ast.expr ->
  (Sqlast.Ast.expr * Sqlval.Tvl.t, string) result

(** Rectify to FALSE instead — the paper's future-work variant (Section 7:
    "generate conditions and check that the pivot row is NOT contained").
    Used by the ablation experiments. *)
val rectify_to_false :
  ?telemetry:Telemetry.t ->
  ?backend:Engine.Exec_backend.kind ->
  Interp.env ->
  Sqlast.Ast.expr ->
  (Sqlast.Ast.expr * Sqlval.Tvl.t, string) result
