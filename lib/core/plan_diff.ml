(* The plan-space differential oracle.

   PQS validates one execution per query, so planner defects that only
   fire under a particular access path (skip scans, OR-index dedup, DESC
   index ranges) are caught only when the default plan happens to take
   that path.  This oracle turns the planner itself into a test surface:
   each synthesized SELECT is re-executed under every enumerable plan
   ({!Engine.Planner.enumerate} + forced join orders) and the result
   multisets are cross-checked.  Any divergence is a bug by construction —
   with no injected defects every enumerated path is a sound superset of
   the matching rows and the executor re-applies the WHERE filter, so all
   plans must agree.

   The differential does not re-run the whole query per plan — the
   projections, sorts, compound arms and subqueries around a scan are
   plan-invariant, so re-evaluating them per forced plan would roughly
   double the campaign's query cost for no extra signal.  Instead each
   scan site is reduced to a minimal reproduction
   [SELECT (DISTINCT) * FROM site WHERE site-where] (DISTINCT copied from
   the owning select because distinct-sensitive access paths behave
   differently under it), and only that witness is executed under the
   default and each forced plan.  The join-order swap is likewise checked
   through minimal two-table witnesses, once per database
   ({!check_join_orders}) since its signal does not depend on the
   surrounding query.  Witnesses carry no LIMIT/OFFSET/GROUP BY/ORDER
   BY, so their results are scan-order-insensitive by construction and
   can be compared as canonical multisets under
   {!Engine.Executor.row_key}, the same row identity the engine's own
   dedup uses.  A divergence report therefore already carries a minimal,
   self-contained witness query.

   ({!query_stable} remains the guard for whole-query forcing via
   {!enumerate_forced}: LIMIT/OFFSET break ties by scan order, and a
   grouped select picks representative tuples in scan order unless every
   output is a group key or an order-insensitive aggregate.)

   Campaign neutrality mirrors the lint oracle: re-executions go through
   {!Engine.Session.query_forced} (no statement counting, no coverage
   hits, no randomness), and the oracle is appended after
   [Oracle.defaults] so the paper's oracles keep report priority. *)

open Sqlval
module A = Sqlast.Ast

(* ------------------------------------------------------------------ *)
(* Order-stability guard                                               *)

let agg_order_insensitive = function
  | A.A_count_star | A.A_count | A.A_min | A.A_max -> true
  | A.A_sum | A.A_avg | A.A_total -> false

let select_has_agg (s : A.select) =
  s.A.sel_group_by <> []
  || List.exists
       (function
         | A.Sel_expr (e, _) -> A.has_agg e
         | A.Star | A.Table_star _ -> false)
       s.A.sel_items
  || (match s.A.sel_having with Some h -> A.has_agg h | None -> false)

(* Is one output expression of an aggregate select independent of which
   tuple represents its group?  Either it is a whole order-insensitive
   aggregate, or it is aggregate-free and equal to a group key. *)
let agg_output_stable group_by e =
  match e with
  | A.Agg (f, _) -> agg_order_insensitive f
  | e ->
      (not (A.has_agg e)) && List.exists (fun g -> A.equal_expr g e) group_by

let rec query_stable (q : A.query) =
  match q with
  | A.Q_values _ -> true
  | A.Q_compound (_, a, b) -> query_stable a && query_stable b
  | A.Q_select s ->
      s.A.sel_limit = None
      && s.A.sel_offset = None
      && List.for_all from_stable s.A.sel_from
      && (if select_has_agg s then
            s.A.sel_having = None
            && List.for_all
                 (function
                   | A.Sel_expr (e, _) -> agg_output_stable s.A.sel_group_by e
                   | A.Star | A.Table_star _ -> false)
                 s.A.sel_items
            && List.for_all
                 (fun (e, _) -> agg_output_stable s.A.sel_group_by e)
                 s.A.sel_order_by
          else true)

and from_stable = function
  | A.F_table _ -> true
  | A.F_join { left; right; _ } -> from_stable left && from_stable right
  | A.F_sub { sub; _ } -> query_stable sub

(* ------------------------------------------------------------------ *)
(* Forced-plan enumeration                                             *)

(* Single-base-table scan sites (the shapes the planner handles), each
   with its effective alias, WHERE clause — the key under which the
   executor applies a forced path — and the owning select's DISTINCT
   flag (distinct-sensitive paths must see it).  Same walk as
   [Lint.scan_sites]. *)
let rec scan_sites session (q : A.query) acc =
  match q with
  | A.Q_values _ -> acc
  | A.Q_compound (_, a, b) -> scan_sites session b (scan_sites session a acc)
  | A.Q_select s -> (
      let acc =
        List.fold_left (fun acc it -> sub_sites session it acc) acc s.A.sel_from
      in
      match s.A.sel_from with
      | [ A.F_table { name; alias } ] -> (
          let catalog = Engine.Session.catalog session in
          match Storage.Catalog.find_table catalog name with
          | Some ts ->
              ( Option.value ~default:name alias,
                name,
                ts.Storage.Catalog.schema,
                s.A.sel_where,
                s.A.sel_distinct )
              :: acc
          | None -> acc)
      | _ -> acc)

and sub_sites session (it : A.from_item) acc =
  match it with
  | A.F_table _ -> acc
  | A.F_join { left; right; _ } ->
      sub_sites session right (sub_sites session left acc)
  | A.F_sub { sub; _ } -> scan_sites session sub acc

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* ------------------------------------------------------------------ *)
(* Minimal per-site reproductions                                      *)

(* [SELECT (DISTINCT) * FROM items WHERE where] — no LIMIT, ORDER BY or
   grouping, so the result multiset is scan-order-insensitive and any two
   sound plans must produce it identically. *)
let minimal_select ~distinct ~from ~where =
  A.Q_select
    {
      A.sel_distinct = distinct;
      sel_items = [ A.Star ];
      sel_from = from;
      sel_where = where;
      sel_group_by = [];
      sel_having = None;
      sel_order_by = [];
      sel_limit = None;
      sel_offset = None;
    }

(* Selects whose own FROM the executor can run right-major (a two-item
   comma FROM or an inner/cross F_join), shallowly: joins inside an F_sub
   are collected as their own sites by the recursion. *)
let rec join_sites (q : A.query) acc =
  match q with
  | A.Q_values _ -> acc
  | A.Q_compound (_, a, b) -> join_sites b (join_sites a acc)
  | A.Q_select s ->
      let acc =
        List.fold_left (fun acc it -> item_join_sites it acc) acc s.A.sel_from
      in
      let swappable =
        (match s.A.sel_from with [ _; _ ] -> true | _ -> false)
        || List.exists item_has_swappable s.A.sel_from
      in
      if swappable then (s.A.sel_distinct, s.A.sel_from, s.A.sel_where) :: acc
      else acc

and item_join_sites (it : A.from_item) acc =
  match it with
  | A.F_table _ -> acc
  | A.F_join { left; right; _ } ->
      item_join_sites right (item_join_sites left acc)
  | A.F_sub { sub; _ } -> join_sites sub acc

and item_has_swappable = function
  | A.F_table _ | A.F_sub _ -> false
  | A.F_join { kind = A.Inner | A.Cross; _ } -> true
  | A.F_join { kind = A.Left; left; right; _ } ->
      item_has_swappable left || item_has_swappable right

(* One comparison unit: a minimal witness query and the forced plans to
   re-run it under (each compared against its default execution). *)
type variant_group = {
  vg_query : A.query;
  vg_forces : Engine.Executor.forced list;
}

(* Cap the total forced-run fan-out at [n], keeping group order. *)
let rec cap_groups n = function
  | [] -> []
  | _ when n <= 0 -> []
  | g :: rest ->
      let k = List.length g.vg_forces in
      if k <= n then g :: cap_groups (n - k) rest
      else [ { g with vg_forces = take n g.vg_forces } ]

let variant_groups ?(max_plans = 4) session (q : A.query) :
    variant_group list =
  let ctx = Engine.Session.ctx session in
  let catalog = Engine.Session.catalog session in
  let site_groups =
    scan_sites session q []
    |> List.filter_map (fun (alias, table, schema, where, distinct) ->
           (* coverage is stripped: plan enumeration is oracle work and
              must not add coverage hits the campaign would not have *)
           let env =
             {
               (Engine.Executor.planner_env ctx schema ~alias) with
               Engine.Eval.coverage = None;
             }
           in
           let default = Engine.Planner.choose env catalog schema ~where in
           let dsig = Engine.Planner.signature default in
           match
             Engine.Planner.enumerate env catalog schema ~where
             |> List.filter (fun p -> Engine.Planner.signature p <> dsig)
           with
           | [] -> None
           | paths ->
               Some
                 {
                   vg_query =
                     minimal_select ~distinct
                       ~from:
                         [ A.F_table { name = table; alias = Some alias } ]
                       ~where;
                   vg_forces =
                     List.map
                       (fun p ->
                         {
                           Engine.Executor.f_sites =
                             [
                               {
                                 Engine.Executor.fs_alias =
                                   String.lowercase_ascii alias;
                                 fs_table = String.lowercase_ascii table;
                                 fs_where = where;
                                 fs_path = p;
                               };
                             ];
                           f_swap_join = false;
                         })
                       paths;
                 })
  in
  cap_groups max_plans site_groups

(* All forced-plan variants of [q] worth comparing against the default
   execution of [q] itself: the join-order swap (one global toggle, when
   a swappable join is present) plus one force per (scan site,
   non-default enumerated path), capped at [max_plans] with the swap
   first.  Empty when the query is not order-stable — unlike the minimal
   witnesses of {!variant_groups}, whole-query comparison is only sound
   on scan-order-insensitive queries. *)
let enumerate_forced ?(max_plans = 4) session (q : A.query) :
    Engine.Executor.forced list =
  if not (query_stable q) then []
  else begin
    let sites =
      variant_groups ~max_plans:Stdlib.max_int session q
      |> List.concat_map (fun g -> g.vg_forces)
    in
    let swaps =
      if join_sites q [] <> [] then
        [ { Engine.Executor.f_sites = []; f_swap_join = true } ]
      else []
    in
    take max_plans (swaps @ sites)
  end

(* ------------------------------------------------------------------ *)
(* The differential check                                              *)

type divergence = {
  dv_witness : string;  (* SQL of the minimal witness query *)
  dv_forced : Engine.Executor.forced;  (* the disagreeing plan *)
  dv_default_rows : int;
  dv_forced_rows : int;
  dv_cardinalities : (string * int) list;
      (* per-plan row counts on the witness, default first;
         -1 = plan errored *)
  dv_default_plan : string list;
  dv_forced_plan : string list;
}

type outcome = { oc_plans : int; oc_divergence : divergence option }

let no_outcome = { oc_plans = 0; oc_divergence = None }

(* The query whose plans are compared: a containment check is
   [VALUES (pivot) INTERSECT query] and the INTERSECT would mask any
   divergence away from the pivot row, so the inner query is extracted. *)
let target_query (q : A.query) =
  match q with
  | A.Q_compound (A.Intersect, A.Q_values _, inner) -> inner
  | q -> q

(* canonical multiset of a result set: sorted row keys *)
let canon (rs : Engine.Executor.result_set) =
  List.sort String.compare
    (List.map Engine.Executor.row_key rs.Engine.Executor.rs_rows)

let message d =
  let cards =
    String.concat ", "
      (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) d.dv_cardinalities)
  in
  Printf.sprintf
    "plan divergence on witness `%s`: forced plan [%s] returned %d rows, \
     default returned %d (cardinalities: %s); default plan: %s; forced \
     plan: %s"
    d.dv_witness
    (Engine.Executor.show_forced d.dv_forced)
    d.dv_forced_rows d.dv_default_rows cards
    (String.concat " | " d.dv_default_plan)
    (String.concat " | " d.dv_forced_plan)

(* Run all groups until the first divergence; within the divergent group
   every plan runs so the report carries all cardinalities. *)
let run_groups session (groups : variant_group list) : outcome =
  let run force w =
    try
      match Engine.Session.query_forced session ~force w with
      | Ok rs -> Some rs
      | Error _ -> None
    with Engine.Errors.Crash _ -> None
  in
  let plans = ref 0 in
  let divergence = ref None in
  List.iter
    (fun g ->
      if Option.is_none !divergence then begin
        plans := !plans + List.length g.vg_forces;
        match run Engine.Executor.no_force g.vg_query with
        | None -> ()
        | Some base ->
            let base_canon = canon base in
            let base_rows = List.length base.Engine.Executor.rs_rows in
            let results =
              List.map
                (fun force ->
                  let label = Engine.Executor.show_forced force in
                  match run force g.vg_query with
                  | None -> (force, label, -1, None)
                  | Some rs ->
                      ( force,
                        label,
                        List.length rs.Engine.Executor.rs_rows,
                        Some (canon rs) ))
                g.vg_forces
            in
            let cards =
              ("default", base_rows)
              :: List.map (fun (_, l, n, _) -> (l, n)) results
            in
            divergence :=
              List.find_map
                (fun (force, _, n, c) ->
                  match c with
                  | Some c when c <> base_canon ->
                      Some
                        {
                          dv_witness =
                            Sqlast.Sql_printer.query
                              (Engine.Session.dialect session)
                              g.vg_query;
                          dv_forced = force;
                          dv_default_rows = base_rows;
                          dv_forced_rows = n;
                          dv_cardinalities = cards;
                          dv_default_plan =
                            Engine.Session.plan_lines session g.vg_query;
                          dv_forced_plan =
                            Engine.Session.plan_lines ~force session
                              g.vg_query;
                        }
                  | _ -> None)
                results
      end)
    groups;
  { oc_plans = !plans; oc_divergence = !divergence }

let check_query ?max_plans session (q : A.query) : outcome =
  run_groups session (variant_groups ?max_plans session (target_query q))

(* The join-order differential.  The executor's swapped join produces the
   same combination multiset as the default order for any inner/cross
   join — a property of the join machinery and the stored data, not of
   the query around it — so it is checked once per database over catalog
   table pairs rather than once per synthesized query (per-query swap
   re-execution costs ~2x the join, the dominant query cost, for a
   signal identical across queries sharing the join shape). *)
let check_join_orders ?(max_pairs = 2) session : outcome =
  let swap = { Engine.Executor.f_sites = []; f_swap_join = true } in
  let witness a b =
    minimal_select ~distinct:false
      ~from:
        [
          A.F_table { name = a; alias = Some "pd_l" };
          A.F_table { name = b; alias = Some "pd_r" };
        ]
      ~where:None
  in
  let tables =
    Schema_info.tables_of_session session
    |> List.map (fun (ti : Schema_info.table_info) -> ti.Schema_info.ti_name)
  in
  let pairs =
    match tables with
    | [] -> []
    | [ t ] -> [ (t, t) ] (* a self-join still drives both loop orders *)
    | ts ->
        let rec consecutive = function
          | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
          | _ -> []
        in
        take max_pairs (consecutive ts)
  in
  run_groups session
    (List.map
       (fun (a, b) -> { vg_query = witness a b; vg_forces = [ swap ] })
       pairs)

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)

let oracle ?(max_plans = 4) () : Oracle.t =
  Oracle.make ~name:"plan_diff" (fun ctx event ->
      let checked oc =
        if oc.oc_plans > 0 then
          Telemetry.inc ctx.Oracle.ctx_telemetry ~by:oc.oc_plans
            "pqs_plans_enumerated_total";
        match oc.oc_divergence with
        | None -> Oracle.Pass
        | Some d ->
            Telemetry.inc ctx.Oracle.ctx_telemetry
              "pqs_plan_divergences_total";
            Oracle.Report { kind = Bug_report.Plan_diff; message = message d }
      in
      match event with
      | Oracle.Containment_check { Oracle.check_stmt = A.Select_stmt q; _ } ->
          Telemetry.Span.timed ctx.Oracle.ctx_telemetry
            Telemetry.Phase.Plan_diff (fun () ->
              checked (check_query ~max_plans ctx.Oracle.ctx_session q))
      | Oracle.Database_ready ->
          Telemetry.Span.timed ctx.Oracle.ctx_telemetry
            Telemetry.Phase.Plan_diff (fun () ->
              checked (check_join_orders ctx.Oracle.ctx_session))
      | Oracle.Containment_check _ | Oracle.Statement _ -> Oracle.Pass)

(* ------------------------------------------------------------------ *)
(* Seed-corpus sweep (make plandiff / sqlancer plan-diff / tests)      *)

type sweep_result = {
  pd_seeds : int;
  pd_queries : int;  (** synthesized queries checked *)
  pd_plans : int;  (** forced plans executed *)
  pd_containment_seeds : int list;
      (** seeds on which the containment check itself failed (pivot row
          missing), ascending and deduplicated *)
  pd_divergences : (int * string) list;
      (** every plan divergence, tagged with its seed *)
}

let sweep ?(queries_per_seed = 3) ?(max_plans = 4)
    ?(bugs = Engine.Bug.empty_set) ~seed_lo ~seed_hi dialect : sweep_result =
  let seeds = ref 0 and queries = ref 0 and plans = ref 0 in
  let containment_seeds = ref [] in
  let divergences = ref [] in
  for seed = seed_lo to seed_hi do
    incr seeds;
    let rng = Rng.make ~seed in
    let session = Engine.Session.create ~seed ~bugs dialect in
    let gen_cfg =
      Gen_db.Config.(
        make dialect |> with_rng rng |> with_max_rows 5
        |> with_extra_statements 4)
    in
    let exec stmt =
      match Engine.Session.execute session stmt with
      | Ok _ | Error _ -> ()
      | exception Engine.Errors.Crash _ -> ()
    in
    List.iter exec (Gen_db.initial_statements gen_cfg);
    Schema_info.tables_of_session session
    |> List.iter (fun (ti : Schema_info.table_info) ->
           for _ = 1 to 2 do
             exec
               (Gen_db.insert_stmt
                  ~existing_rows:
                    (Schema_info.rows_of_table session ti.Schema_info.ti_name)
                  gen_cfg ti)
           done);
    List.iter exec (Gen_db.random_statements gen_cfg session);
    List.iter exec (Gen_db.fill_statements gen_cfg session);
    (* deterministic index DDL on top of the generated schema, so every
       seed has a non-trivial plan space: a composite index (skip scans),
       a DESC single-column index (descending ranges) and plain
       single-column indexes (OR unions, probes).  Random DDL alone
       creates these shapes too rarely for a bounded sweep. *)
    Schema_info.tables_of_session session
    |> List.iter (fun (ti : Schema_info.table_info) ->
           let t = ti.Schema_info.ti_name in
           let cols =
             List.map
               (fun (ci : Schema_info.column_info) -> ci.Schema_info.ci_name)
               ti.Schema_info.ti_columns
           in
           let ic ?(desc = false) c =
             { A.ic_expr = A.col c; ic_collate = None; ic_desc = desc }
           in
           let mk name columns =
             exec
               (A.Create_index
                  {
                    A.ci_name = Printf.sprintf "pdx_%s_%s" t name;
                    ci_if_not_exists = false;
                    ci_table = t;
                    ci_unique = false;
                    ci_columns = columns;
                    ci_where = None;
                  })
           in
           match cols with
           | c0 :: c1 :: _ ->
               mk "comp" [ ic c0; ic c1 ];
               mk "desc" [ ic ~desc:true c0 ];
               mk "one" [ ic c1 ]
           | [ c0 ] ->
               mk "desc" [ ic ~desc:true c0 ];
               mk "one" [ ic c0 ]
           | [] -> ());
    let sources =
      Schema_info.tables_of_session session
      |> List.filter_map (fun (ti : Schema_info.table_info) ->
             match
               Schema_info.rows_of_table session ti.Schema_info.ti_name
             with
             | [] -> None
             | rows -> Some (ti, rows))
    in
    if sources <> [] then begin
      let csl =
        Engine.Options.case_sensitive_like (Engine.Session.options session)
      in
      for _ = 1 to queries_per_seed do
        let chosen =
          let k = if List.length sources >= 2 && Rng.bool rng then 2 else 1 in
          Rng.sample rng k sources
        in
        let pivot =
          List.map
            (fun ((ti : Schema_info.table_info), rows) -> (ti, Rng.pick rng rows))
            chosen
        in
        let rec attempt tries =
          if tries <= 0 then None
          else
            match
              Gen_query.synthesize ~rng ~dialect ~pivot
                ~case_sensitive_like:csl ~max_depth:4 ~check_expressions:true
                ()
            with
            | Ok t -> Some t
            | Error _ -> attempt (tries - 1)
        in
        match attempt 5 with
        | None -> ()
        | Some t -> (
            incr queries;
            (* would the containment oracle fire on this query? *)
            let containment_fired =
              match
                Engine.Session.query session
                  (match Gen_query.containment_stmt t with
                  | A.Select_stmt q -> q
                  | _ -> A.Q_select t.Gen_query.query)
              with
              | Ok rs -> rs.Engine.Executor.rs_rows = []
              | Error _ -> false
              | exception Engine.Errors.Crash _ -> false
            in
            if containment_fired && not (List.mem seed !containment_seeds) then
              containment_seeds := seed :: !containment_seeds;
            match
              check_query ~max_plans session (A.Q_select t.Gen_query.query)
            with
            | oc ->
                plans := !plans + oc.oc_plans;
                (match oc.oc_divergence with
                | Some d -> divergences := (seed, message d) :: !divergences
                | None -> ())
            | exception Engine.Errors.Crash _ -> ())
      done;
      (* directed plan probes: pivot-valued shapes that exercise the
         distinctive access paths (composite-index skip scan under
         DISTINCT, OR union over two indexes, strict range over the DESC
         index).  Random synthesis emits equality/OR conjunct WHEREs too
         rarely for a bounded sweep to reach those paths. *)
      List.iter
        (fun ((ti : Schema_info.table_info), rows) ->
          let row = Rng.pick rng rows in
          let cols = ti.Schema_info.ti_columns in
          let value i = if i < Array.length row then row.(i) else Value.Null in
          let col i = A.col (List.nth cols i).Schema_info.ci_name in
          let eq i = A.Binary (A.Eq, col i, A.Lit (value i)) in
          let select ?(distinct = false) items where =
            A.Q_select
              {
                A.sel_distinct = distinct;
                sel_items = items;
                sel_from = [ A.F_table { name = ti.Schema_info.ti_name; alias = None } ];
                sel_where = Some where;
                sel_group_by = [];
                sel_having = None;
                sel_order_by = [];
                sel_limit = None;
                sel_offset = None;
              }
          in
          let probes =
            (select ~distinct:true [ A.Sel_expr (col 0, None) ] (eq 0)
            :: select [ A.Star ] (A.Binary (A.Gt, col 0, A.Lit (value 0)))
            :: select [ A.Star ] (A.Binary (A.Lt, col 0, A.Lit (value 0)))
            ::
            (if List.length cols >= 2 then
               [
                 select ~distinct:true [ A.Sel_expr (col 0, None) ] (eq 1);
                 select [ A.Star ] (A.Binary (A.Or, eq 0, eq 1));
               ]
             else []))
          in
          List.iter
            (fun q ->
              incr queries;
              match check_query ~max_plans session q with
              | oc ->
                  plans := !plans + oc.oc_plans;
                  (match oc.oc_divergence with
                  | Some d -> divergences := (seed, message d) :: !divergences
                  | None -> ())
              | exception Engine.Errors.Crash _ -> ())
            probes)
        sources
    end;
    (* the per-database join-order differential, as the oracle runs it *)
    (match check_join_orders session with
    | oc ->
        plans := !plans + oc.oc_plans;
        (match oc.oc_divergence with
        | Some d -> divergences := (seed, message d) :: !divergences
        | None -> ())
    | exception Engine.Errors.Crash _ -> ())
  done;
  {
    pd_seeds = !seeds;
    pd_queries = !queries;
    pd_plans = !plans;
    pd_containment_seeds = List.sort compare (List.rev !containment_seeds);
    pd_divergences = List.rev !divergences;
  }

(* Seeds on which plan-diff diverged but the containment check passed:
   the bug classes only this oracle surfaces. *)
let exclusive_seeds (r : sweep_result) =
  List.sort_uniq compare (List.map fst r.pd_divergences)
  |> List.filter (fun s -> not (List.mem s r.pd_containment_seeds))

(* self-registration; the recheck rebuilds the database and re-runs the
   multi-plan comparison, so reduced scripts must keep diverging *)
let () =
  let recheck ~dialect ~bugs ~oracle:_ stmts =
    let session = Engine.Session.create ~bugs dialect in
    (try
       List.iter
         (fun stmt ->
           match Engine.Session.execute session stmt with
           | Ok _ | Error _ -> ())
         stmts
     with Engine.Errors.Crash _ -> ());
    let diverged check =
      match check session with
      | oc -> oc.oc_divergence <> None
      | exception Engine.Errors.Crash _ -> false
    in
    (* on the final SELECT if the script ends in one (a per-query site
       divergence), and over the join-order witnesses either way (a
       Database_ready divergence has no trigger SELECT) *)
    (match List.rev stmts with
    | A.Select_stmt q :: _ -> diverged (fun s -> check_query s q)
    | _ -> false)
    || diverged check_join_orders
  in
  Oracle.Registry.register
    {
      Oracle.Registry.reg_name = "plan_diff";
      reg_doc =
        "add the plan-space differential oracle: re-execute every \
         containment query under each enumerable access plan and \
         cross-check the result multisets";
      reg_flag = Some "plan-diff";
      reg_default = false;
      reg_kinds = [ Bug_report.Plan_diff ];
      reg_make = (fun () -> oracle ());
      reg_recheck = Oracle.Registry.Custom recheck;
    }
