open Sqlval
module A = Sqlast.Ast

type ctx = {
  rng : Rng.t;
  dialect : Dialect.t;
  tables : Schema_info.table_info list;
  max_depth : int;
  pool : Value.t list;
      (* values present in the database; literals are biased toward (small
         mutations of) them so that comparisons are tight around real rows *)
}

(* ------------------------------------------------------------------ *)
(* Literals                                                             *)

let literal rng dialect : Value.t =
  let base =
    [
      (2, `Null);
      (6, `Int);
      (3, `Real);
      (6, `Text);
      (1, `Blob);
    ]
  in
  let base =
    if Dialect.equal dialect Dialect.Postgres_like then (3, `Bool) :: base
    else base
  in
  match Rng.pick_weighted rng base with
  | `Null -> Value.Null
  | `Int -> Value.Int (Rng.interesting_int rng)
  | `Real -> Value.Real (Rng.interesting_real rng)
  | `Text -> Value.Text (Rng.small_string rng)
  | `Blob -> Value.Blob (Rng.small_string rng)
  | `Bool -> Value.Bool (Rng.bool rng)

let literal_for_column rng dialect (ty : Datatype.t) : Value.t =
  if Rng.chance rng 0.15 then Value.Null
  else
    match (dialect, ty) with
    | Dialect.Sqlite_like, _ ->
        (* sqlite stores anything anywhere *)
        literal rng dialect
    | _, Datatype.Any -> literal rng dialect
    | _, Datatype.Int { width; unsigned } ->
        let lo, hi = Datatype.int_range width in
        if unsigned then
          Value.Int (Int64.of_int (Rng.int_in rng 0 255))
        else if
          (* mysql (non-strict) clamps out-of-range inserts with a warning;
             feeding it such values exercises that path *)
          Dialect.equal dialect Dialect.Mysql_like
          && width <> Datatype.Big
          && Rng.chance rng 0.15
        then Value.Int (Int64.add hi (Int64.of_int (1 + Rng.int rng 1000)))
        else if Rng.chance rng 0.3 then
          Value.Int (if Rng.bool rng then lo else hi)
        else
          let v = Rng.interesting_int rng in
          let v = if v < lo then lo else if v > hi then hi else v in
          Value.Int v
    | _, Datatype.Serial -> Value.Int (Int64.of_int (Rng.int_in rng 1 100))
    | _, Datatype.Real -> Value.Real (Rng.interesting_real rng)
    | _, Datatype.Text -> Value.Text (Rng.small_string rng)
    | _, Datatype.Blob -> Value.Blob (Rng.small_string rng)
    | _, Datatype.Bool -> (
        match dialect with
        | Dialect.Postgres_like -> Value.Bool (Rng.bool rng)
        | _ -> Value.Int (if Rng.bool rng then 1L else 0L))

(* A literal drawn from the database value pool, possibly mutated in ways
   that probe collation/affinity edges (trailing spaces, case flips,
   off-by-one integers). *)
let pooled_literal ctx : Value.t option =
  match ctx.pool with
  | [] -> None
  | pool ->
      let v = Rng.pick ctx.rng pool in
      let mutated =
        match v with
        | Value.Text s ->
            Rng.pick_weighted ctx.rng
              [
                (4, Value.Text s);
                (2, Value.Text (s ^ " "));
                (1, Value.Text (s ^ "  "));
                (1, Value.Text (String.uppercase_ascii s));
                (1, Value.Text (String.lowercase_ascii s));
              ]
        | Value.Int i ->
            Rng.pick_weighted ctx.rng
              [
                (5, Value.Int i);
                (1, Value.Int (Int64.add i 1L));
                (1, Value.Int (Int64.sub i 1L));
              ]
        | v -> v
      in
      Some mutated

(* ------------------------------------------------------------------ *)
(* Column references                                                    *)

let all_columns ctx =
  List.concat_map
    (fun (ti : Schema_info.table_info) ->
      List.map (fun c -> (ti, c)) ti.Schema_info.ti_columns)
    ctx.tables

let qualify ctx (ti : Schema_info.table_info) (c : Schema_info.column_info) =
  (* qualify when several tables are in scope or columns are ambiguous *)
  let ambiguous =
    List.length
      (List.filter
         (fun (_, (c' : Schema_info.column_info)) ->
           String.lowercase_ascii c'.Schema_info.ci_name
           = String.lowercase_ascii c.Schema_info.ci_name)
         (all_columns ctx))
    > 1
  in
  if ambiguous || (List.length ctx.tables > 1 && Rng.bool ctx.rng)
     || Rng.chance ctx.rng 0.3
  then A.Col { table = Some ti.Schema_info.ti_name; column = c.Schema_info.ci_name }
  else A.Col { table = None; column = c.Schema_info.ci_name }

let random_column ctx : (A.expr * Datatype.t) option =
  match all_columns ctx with
  | [] -> None
  | cols ->
      let ti, c = Rng.pick ctx.rng cols in
      Some (qualify ctx ti c, c.Schema_info.ci_type)

(* ------------------------------------------------------------------ *)
(* Free-form generation (sqlite/mysql; Algorithm 1)                     *)

let rec gen_free ctx depth : A.expr =
  if depth >= ctx.max_depth then gen_leaf ctx
  else
    let rng = ctx.rng in
    let sub () = gen_free ctx (depth + 1) in
    let sqlite = Dialect.equal ctx.dialect Dialect.Sqlite_like in
    let mysql = Dialect.equal ctx.dialect Dialect.Mysql_like in
    let nodes =
      [
        (6, `Leaf);
        (4, `Comparison);
        (5, `Col_vs_lit);
        (3, `Logical);
        (2, `Not);
        (2, `Arith);
        (1, `Unary_misc);
        (2, `Is_null);
        (2, `Is_bool);
        (2, `Between);
        (2, `In);
        (3, `Like);
        (1, `Case);
        (2, `Cast);
        (1, `Func);
        (1, `Bitop);
      ]
      @ (if sqlite then
           [ (2, `Is_expr); (2, `Col_is_lit); (2, `Glob); (2, `Collate);
             (1, `Concat); (2, `Or_of_eqs); (1, `Text_minus_int) ]
         else [])
      @ (if mysql then [ (2, `Null_safe_eq); (1, `Cast_unsigned); (1, `Least) ]
         else [])
    in
    match Rng.pick_weighted rng nodes with
    | `Leaf -> gen_leaf ctx
    | `Comparison ->
        let op = Rng.pick rng [ A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
        A.Binary (op, sub (), sub ())
    | `Col_vs_lit -> (
        match random_column ctx with
        | None -> gen_leaf ctx
        | Some (col, _) ->
            let op = Rng.pick rng [ A.Eq; A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
            let lit = A.Lit (gen_literal ctx) in
            if Rng.bool rng then A.Binary (op, col, lit)
            else A.Binary (op, lit, col))
    | `Col_is_lit -> (
        (* sqlite's IS / IS NOT over scalars, the Listing 1 shape *)
        match random_column ctx with
        | None -> gen_leaf ctx
        | Some (col, _) ->
            A.Is
              {
                negated = Rng.bool rng;
                arg = col;
                rhs = A.Is_expr (A.Lit (gen_literal ctx));
              })
    | `Logical ->
        A.Binary ((if Rng.bool rng then A.And else A.Or), sub (), sub ())
    | `Not -> A.Unary (A.Not, sub ())
    | `Arith ->
        let op = Rng.pick rng [ A.Add; A.Sub; A.Mul; A.Div; A.Rem ] in
        A.Binary (op, sub (), sub ())
    | `Unary_misc -> A.Unary (Rng.pick rng [ A.Neg; A.Pos; A.Bit_not ], sub ())
    | `Is_null -> A.Is { negated = Rng.bool rng; arg = sub (); rhs = A.Is_null }
    | `Is_bool ->
        A.Is
          {
            negated = Rng.bool rng;
            arg = sub ();
            rhs = (if Rng.bool rng then A.Is_true else A.Is_false);
          }
    | `Between ->
        (* often a column between pooled bounds, probing collation edges *)
        let arg =
          if Rng.chance rng 0.5 then
            match random_column ctx with Some (c, _) -> c | None -> sub ()
          else sub ()
        in
        let bound () =
          if Rng.chance rng 0.6 then A.Lit (gen_literal ctx) else sub ()
        in
        A.Between { negated = Rng.bool rng; arg; lo = bound (); hi = bound () }
    | `In ->
        let n = Rng.int_in rng 1 3 in
        A.In_list
          {
            negated = Rng.bool rng;
            arg = sub ();
            list = List.init n (fun _ -> sub ());
          }
    | `Like ->
        (* patterns are often derived from stored text values so that exact
           and prefix matches actually occur (paper Listing 7's shape) *)
        let pooled_pattern () =
          let texts =
            List.filter_map
              (function Value.Text s -> Some s | _ -> None)
              ctx.pool
          in
          match texts with
          | [] -> gen_pattern rng
          | ts -> (
              let s = Rng.pick rng ts in
              match Rng.int rng 6 with
              | 0 -> s
              | 1 -> s ^ "%"
              | 2 -> "%" ^ s
              | 3 -> String.uppercase_ascii s
              | 4 -> String.lowercase_ascii s
              | _ -> if s = "" then "%" else String.sub s 0 1 ^ "%")
        in
        let pattern =
          if Rng.chance rng 0.4 then A.Lit (Value.Text (pooled_pattern ()))
          else if Rng.chance rng 0.6 then A.Lit (Value.Text (gen_pattern rng))
          else sub ()
        in
        let arg = if Rng.chance rng 0.6 then gen_leaf ctx else sub () in
        A.Like { negated = Rng.bool rng; arg; pattern; escape = None }
    | `Case ->
        let n = Rng.int_in rng 1 2 in
        A.Case
          {
            operand = (if Rng.bool rng then Some (sub ()) else None);
            branches = List.init n (fun _ -> (sub (), sub ()));
            else_ = (if Rng.bool rng then Some (sub ()) else None);
          }
    | `Cast ->
        let ty =
          Rng.pick rng
            [
              Datatype.Int { width = Datatype.Regular; unsigned = false };
              Datatype.Real;
              Datatype.Text;
              Datatype.Blob;
            ]
        in
        A.Cast (ty, sub ())
    | `Cast_unsigned ->
        A.Cast (Datatype.Int { width = Datatype.Big; unsigned = true }, sub ())
    | `Func ->
        let fs =
          [
            (A.F_abs, 1); (A.F_length, 1); (A.F_lower, 1); (A.F_upper, 1);
            (A.F_coalesce, 2); (A.F_ifnull, 2); (A.F_nullif, 2);
            (A.F_trim, 1); (A.F_ltrim, 1); (A.F_rtrim, 1); (A.F_substr, 2);
            (A.F_replace, 3); (A.F_instr, 2); (A.F_hex, 1); (A.F_round, 1);
            (A.F_sign, 1);
          ]
          @ (if sqlite then [ (A.F_typeof, 1); (A.F_quote, 1) ] else [])
        in
        let f, arity = Rng.pick rng fs in
        let arity = match f with A.F_coalesce -> Rng.int_in rng 1 3 | _ -> arity in
        A.Func (f, List.init arity (fun _ -> sub ()))
    | `Bitop ->
        let op = Rng.pick rng [ A.Bit_and; A.Bit_or; A.Shift_left; A.Shift_right ] in
        A.Binary (op, sub (), sub ())
    | `Is_expr ->
        A.Is { negated = Rng.bool rng; arg = sub (); rhs = A.Is_expr (sub ()) }
    | `Glob ->
        let pooled_glob () =
          let texts =
            List.filter_map
              (function Value.Text s when s <> "" -> Some s | _ -> None)
              ctx.pool
          in
          match texts with
          | [] -> gen_glob_pattern rng
          | ts ->
              (* a character class whose range ends exactly at the stored
                 value's first character — the boundary the injected GLOB
                 defect gets wrong *)
              let s = Rng.pick rng ts in
              let c = s.[0] in
              let lo = Char.chr (max 1 (Char.code c - 2)) in
              Printf.sprintf "[%c-%c]*" lo c
        in
        let pattern =
          if Rng.chance rng 0.4 then A.Lit (Value.Text (pooled_glob ()))
          else if Rng.chance rng 0.5 then
            A.Lit (Value.Text (gen_glob_pattern rng))
          else sub ()
        in
        let arg = if Rng.chance rng 0.6 then gen_leaf ctx else sub () in
        A.Glob { negated = Rng.bool rng; arg; pattern }
    | `Or_of_eqs -> (
        (* (c1 = v1) OR (c2 = v2): the shape the OR-union planner path
           wants *)
        match (random_column ctx, random_column ctx) with
        | Some (c1, _), Some (c2, _) ->
            A.Binary
              ( A.Or,
                A.Binary (A.Eq, c1, A.Lit (gen_literal ctx)),
                A.Binary (A.Eq, c2, A.Lit (gen_literal ctx)) )
        | _ -> gen_leaf ctx)
    | `Text_minus_int ->
        (* TEXT minus a large integer: paper Listing 2's precision shape *)
        A.Binary
          ( A.Sub,
            gen_leaf ctx,
            A.Lit
              (Value.Int
                 (Rng.pick rng
                    [ 2851427734582196970L; 9007199254740995L;
                      4611686018427387905L ])) )
    | `Collate -> A.Collate (sub (), Rng.pick rng Collation.all)
    | `Concat -> A.Binary (A.Concat, sub (), sub ())
    | `Null_safe_eq -> A.Binary (A.Null_safe_eq, sub (), sub ())
    | `Least ->
        let f = if Rng.bool rng then A.F_least else A.F_greatest in
        A.Func (f, List.init (Rng.int_in rng 2 3) (fun _ -> sub ()))

and gen_leaf ctx : A.expr =
  if Rng.chance ctx.rng 0.55 then
    match random_column ctx with
    | Some (col, _) -> col
    | None -> A.Lit (gen_literal ctx)
  else A.Lit (gen_literal ctx)

and gen_literal ctx : Value.t =
  if Rng.chance ctx.rng 0.45 then
    match pooled_literal ctx with
    | Some v -> v
    | None -> literal ctx.rng ctx.dialect
  else literal ctx.rng ctx.dialect

and gen_pattern rng =
  let pieces =
    [ "%"; "_"; "a"; "b"; "A"; "0"; "1"; " "; "./"; "ab"; "%a"; "a%"; "_b" ]
  in
  String.concat "" (List.init (Rng.int_in rng 1 3) (fun _ -> Rng.pick rng pieces))

and gen_glob_pattern rng =
  let pieces = [ "*"; "?"; "a"; "b"; "[a-c]"; "[^x]"; "0"; "ab" ] in
  String.concat "" (List.init (Rng.int_in rng 1 3) (fun _ -> Rng.pick rng pieces))

(* ------------------------------------------------------------------ *)
(* Type-directed generation (postgres)                                  *)

type pg_ty = P_int | P_real | P_text | P_bool | P_blob

let pg_ty_of_datatype = function
  | Datatype.Int _ | Datatype.Serial -> P_int
  | Datatype.Real -> P_real
  | Datatype.Text -> P_text
  | Datatype.Bool -> P_bool
  | Datatype.Blob -> P_blob
  | Datatype.Any -> P_int

let pg_pool_literal ctx ty =
  match pooled_literal ctx with
  | Some v
    when (match (ty, v) with
         | P_int, Value.Int _ -> true
         | P_real, Value.Real _ -> true
         | P_text, Value.Text _ -> true
         | P_bool, Value.Bool _ -> true
         | P_blob, Value.Blob _ -> true
         | _ -> false) ->
      Some v
  | _ -> None

let pg_literal rng = function
  | P_int -> Value.Int (Rng.interesting_int rng)
  | P_real -> Value.Real (Rng.interesting_real rng)
  | P_text -> Value.Text (Rng.small_string rng)
  | P_bool -> Value.Bool (Rng.bool rng)
  | P_blob -> Value.Blob (Rng.small_string rng)

let pg_columns_of ctx ty =
  List.filter
    (fun ((_ : Schema_info.table_info), (c : Schema_info.column_info)) ->
      pg_ty_of_datatype c.Schema_info.ci_type = ty)
    (all_columns ctx)

let rec gen_pg ctx depth (ty : pg_ty) : A.expr =
  let rng = ctx.rng in
  let leaf () =
    let cols = pg_columns_of ctx ty in
    if cols <> [] && Rng.chance rng 0.55 then
      let ti, c = Rng.pick rng cols in
      qualify ctx ti c
    else
      match (Rng.chance rng 0.45, pg_pool_literal ctx ty) with
      | true, Some v -> A.Lit v
      | _ -> A.Lit (pg_literal rng ty)
  in
  if depth >= ctx.max_depth then leaf ()
  else
    let sub ty' = gen_pg ctx (depth + 1) ty' in
    let scalar_ty () = Rng.pick rng [ P_int; P_real; P_text; P_bool ] in
    match ty with
    | P_bool -> (
        match
          Rng.pick_weighted rng
            [
              (4, `Leaf);
              (6, `Comparison);
              (4, `Logical);
              (2, `Not);
              (3, `Is_null);
              (2, `Is_bool);
              (2, `Between);
              (2, `In);
              (2, `Like);
              (2, `Distinct);
              (1, `Case);
            ]
        with
        | `Leaf -> leaf ()
        | `Comparison ->
            let t = scalar_ty () in
            let op = Rng.pick rng [ A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
            A.Binary (op, sub t, sub t)
        | `Logical ->
            A.Binary ((if Rng.bool rng then A.And else A.Or), sub P_bool, sub P_bool)
        | `Not -> A.Unary (A.Not, sub P_bool)
        | `Is_null ->
            A.Is { negated = Rng.bool rng; arg = sub (scalar_ty ()); rhs = A.Is_null }
        | `Is_bool ->
            A.Is
              {
                negated = Rng.bool rng;
                arg = sub P_bool;
                rhs = (if Rng.bool rng then A.Is_true else A.Is_false);
              }
        | `Between ->
            let t = Rng.pick rng [ P_int; P_real; P_text ] in
            A.Between
              { negated = Rng.bool rng; arg = sub t; lo = sub t; hi = sub t }
        | `In ->
            let t = scalar_ty () in
            A.In_list
              {
                negated = Rng.bool rng;
                arg = sub t;
                list = List.init (Rng.int_in rng 1 3) (fun _ -> sub t);
              }
        | `Like ->
            A.Like
              {
                negated = Rng.bool rng;
                arg = sub P_text;
                pattern = A.Lit (Value.Text (gen_pattern rng));
                escape = None;
              }
        | `Distinct ->
            let t = scalar_ty () in
            A.Is
              {
                negated = false;
                arg = sub t;
                rhs = A.Is_distinct_from (sub t);
              }
        | `Case ->
            A.Case
              {
                operand = None;
                branches = [ (sub P_bool, sub P_bool) ];
                else_ = Some (sub P_bool);
              })
    | P_int -> (
        match
          Rng.pick_weighted rng
            [ (6, `Leaf); (3, `Arith); (1, `Neg); (1, `Abs); (1, `Case) ]
        with
        | `Leaf -> leaf ()
        | `Arith ->
            (* Div/Rem excluded: division by zero errors in postgres *)
            let op = Rng.pick rng [ A.Add; A.Sub; A.Mul ] in
            A.Binary (op, sub P_int, sub P_int)
        | `Neg -> A.Unary (A.Neg, sub P_int)
        | `Abs -> A.Func (A.F_abs, [ sub P_int ])
        | `Case ->
            A.Case
              {
                operand = None;
                branches = [ (sub P_bool, sub P_int) ];
                else_ = Some (sub P_int);
              })
    | P_real -> (
        match
          Rng.pick_weighted rng [ (6, `Leaf); (3, `Arith); (1, `Cast_int) ]
        with
        | `Leaf -> leaf ()
        | `Arith ->
            let op = Rng.pick rng [ A.Add; A.Sub; A.Mul ] in
            A.Binary (op, sub P_real, sub P_real)
        | `Cast_int -> A.Cast (Datatype.Real, sub P_int))
    | P_text -> (
        match
          Rng.pick_weighted rng
            [
              (6, `Leaf); (2, `Concat); (2, `Lower); (1, `Trim); (1, `Substr);
              (1, `Replace); (1, `Cast_int);
            ]
        with
        | `Leaf -> leaf ()
        | `Concat -> A.Binary (A.Concat, sub P_text, sub P_text)
        | `Lower ->
            A.Func ((if Rng.bool rng then A.F_lower else A.F_upper), [ sub P_text ])
        | `Trim ->
            A.Func (Rng.pick rng [ A.F_trim; A.F_ltrim; A.F_rtrim ], [ sub P_text ])
        | `Substr ->
            A.Func (A.F_substr, [ sub P_text; A.Lit (Value.Int (Int64.of_int (Rng.int_in rng (-3) 4))) ])
        | `Replace -> A.Func (A.F_replace, [ sub P_text; sub P_text; sub P_text ])
        | `Cast_int -> A.Cast (Datatype.Text, sub P_int))
    | P_blob -> leaf ()

(* ------------------------------------------------------------------ *)
(* Simple predicates: bare column-vs-literal shapes used as WHERE
   conjuncts so that index access paths actually fire                    *)

let simple_predicate ctx : A.expr =
  let rng = ctx.rng in
  match random_column ctx with
  | None -> A.Lit (literal rng ctx.dialect)
  | Some (col, dt) -> (
      match ctx.dialect with
      | Dialect.Postgres_like -> (
          (* typed: compare against a literal of the column's type *)
          let lit ty = A.Lit (literal_for_column rng ctx.dialect ty) in
          match dt with
          | Datatype.Bool ->
              A.Is
                {
                  negated = Rng.bool rng;
                  arg = col;
                  rhs = (if Rng.bool rng then A.Is_true else A.Is_false);
                }
          | _ ->
              let op = Rng.pick rng [ A.Eq; A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
              let l =
                match pooled_literal ctx with
                | Some v
                  when (match (dt, v) with
                       | (Datatype.Int _ | Datatype.Serial), Value.Int _ -> true
                       | Datatype.Real, Value.Real _ -> true
                       | Datatype.Text, Value.Text _ -> true
                       | Datatype.Blob, Value.Blob _ -> true
                       | _ -> false) ->
                    A.Lit v
                | _ -> lit dt
              in
              if Rng.bool rng then A.Binary (op, col, l) else A.Binary (op, l, col))
      | Dialect.Sqlite_like | Dialect.Mysql_like -> (
          let lit = A.Lit (gen_literal ctx) in
          match Rng.pick_weighted rng
                  [
                    (5, `Cmp);
                    (2, `Is_null);
                    ((if Dialect.equal ctx.dialect Dialect.Sqlite_like then 3 else 0), `Is_lit);
                    ((if Dialect.equal ctx.dialect Dialect.Sqlite_like then 2 else 0), `Or_eqs);
                    (2, `Like);
                    (2, `Between);
                    (1, `In);
                  ]
          with
          | `Cmp ->
              let op = Rng.pick rng [ A.Eq; A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
              if Rng.bool rng then A.Binary (op, col, lit)
              else A.Binary (op, lit, col)
          | `Or_eqs -> (
              match random_column ctx with
              | Some (col2, _) ->
                  A.Binary
                    ( A.Or,
                      A.Binary (A.Eq, col, lit),
                      A.Binary (A.Eq, col2, A.Lit (gen_literal ctx)) )
              | None -> A.Binary (A.Eq, col, lit))
          | `Is_null -> A.Is { negated = Rng.bool rng; arg = col; rhs = A.Is_null }
          | `Is_lit -> A.Is { negated = Rng.bool rng; arg = col; rhs = A.Is_expr lit }
          | `Like ->
              let texts =
                List.filter_map
                  (function Value.Text s -> Some s | _ -> None)
                  ctx.pool
              in
              let pattern =
                match texts with
                | ts when ts <> [] && Rng.chance rng 0.6 -> (
                    let s = Rng.pick rng ts in
                    match Rng.int rng 3 with
                    | 0 -> s
                    | 1 -> s ^ "%"
                    | _ -> String.uppercase_ascii s)
                | _ -> gen_pattern rng
              in
              A.Like
                {
                  negated = Rng.bool rng;
                  arg = col;
                  pattern = A.text_lit pattern;
                  escape = None;
                }
          | `Between ->
              A.Between
                {
                  negated = Rng.bool rng;
                  arg = col;
                  lo = A.Lit (gen_literal ctx);
                  hi = A.Lit (gen_literal ctx);
                }
          | `In ->
              A.In_list
                {
                  negated = Rng.bool rng;
                  arg = col;
                  list =
                    List.init (Rng.int_in rng 1 3) (fun _ ->
                        A.Lit (gen_literal ctx));
                }))

(* ------------------------------------------------------------------ *)
(* Targeted predicates: guided generation (Gen_bias) asks for a WHERE
   conjunct exercising one specific expression kind.  Shapes reuse the
   random generators' constructors so that everything produced here is
   also reachable blind — guidance changes the sampling distribution,
   never the query language. *)

let predicate_of_kind ctx (kind : string) : A.expr option =
  let rng = ctx.rng in
  match ctx.dialect with
  | Dialect.Postgres_like -> (
      let b () = gen_pg ctx 1 P_bool in
      let i () = gen_pg ctx 1 P_int in
      let t () = gen_pg ctx 1 P_text in
      let sc () = gen_pg ctx 1 (Rng.pick rng [ P_int; P_real; P_text ]) in
      let cmp_op () = Rng.pick rng [ A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
      match kind with
      | "cmp" -> Some (A.Binary (cmp_op (), i (), i ()))
      | "logic" ->
          Some (A.Binary ((if Rng.bool rng then A.And else A.Or), b (), b ()))
      | "not" -> Some (A.Unary (A.Not, b ()))
      | "unary" -> Some (A.Binary (cmp_op (), A.Unary (A.Neg, i ()), i ()))
      | "arith" ->
          let op = Rng.pick rng [ A.Add; A.Sub; A.Mul ] in
          Some (A.Binary (cmp_op (), A.Binary (op, i (), i ()), i ()))
      | "concat" ->
          Some (A.Binary (A.Eq, A.Binary (A.Concat, t (), t ()), t ()))
      | "is_null" ->
          Some (A.Is { negated = Rng.bool rng; arg = sc (); rhs = A.Is_null })
      | "is_bool" ->
          Some
            (A.Is
               {
                 negated = Rng.bool rng;
                 arg = b ();
                 rhs = (if Rng.bool rng then A.Is_true else A.Is_false);
               })
      | "is_distinct" ->
          Some
            (A.Is { negated = false; arg = i (); rhs = A.Is_distinct_from (i ()) })
      | "between" ->
          Some
            (A.Between { negated = Rng.bool rng; arg = i (); lo = i (); hi = i () })
      | "in" ->
          Some
            (A.In_list
               {
                 negated = Rng.bool rng;
                 arg = i ();
                 list = List.init (Rng.int_in rng 1 3) (fun _ -> i ());
               })
      | "like" ->
          Some
            (A.Like
               {
                 negated = Rng.bool rng;
                 arg = t ();
                 pattern = A.Lit (Value.Text (gen_pattern rng));
                 escape = None;
               })
      | "case" ->
          Some
            (A.Case
               { operand = None; branches = [ (b (), b ()) ]; else_ = Some (b ()) })
      | "cast" ->
          Some
            (A.Binary (cmp_op (), A.Cast (Datatype.Real, i ()), gen_pg ctx 1 P_real))
      | "func" ->
          Some (A.Binary (cmp_op (), A.Func (A.F_length, [ t () ]), i ()))
      | _ -> None)
  | Dialect.Sqlite_like | Dialect.Mysql_like -> (
      let sqlite = Dialect.equal ctx.dialect Dialect.Sqlite_like in
      let mysql = Dialect.equal ctx.dialect Dialect.Mysql_like in
      let leaf () = gen_leaf ctx in
      let lit () = A.Lit (gen_literal ctx) in
      let colf () =
        match random_column ctx with Some (c, _) -> c | None -> leaf ()
      in
      let cmp_op () = Rng.pick rng [ A.Eq; A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
      match kind with
      | "cmp" ->
          let col = colf () and l = lit () in
          Some
            (if Rng.bool rng then A.Binary (cmp_op (), col, l)
             else A.Binary (cmp_op (), l, col))
      | "logic" ->
          Some
            (A.Binary
               ( (if Rng.bool rng then A.And else A.Or),
                 simple_predicate ctx,
                 simple_predicate ctx ))
      | "not" -> Some (A.Unary (A.Not, simple_predicate ctx))
      | "unary" ->
          Some (A.Unary (Rng.pick rng [ A.Neg; A.Pos; A.Bit_not ], leaf ()))
      | "arith" ->
          let op = Rng.pick rng [ A.Add; A.Sub; A.Mul; A.Div; A.Rem ] in
          Some (A.Binary (op, leaf (), leaf ()))
      | "concat" when sqlite -> Some (A.Binary (A.Concat, leaf (), leaf ()))
      | "bitop" ->
          let op =
            Rng.pick rng [ A.Bit_and; A.Bit_or; A.Shift_left; A.Shift_right ]
          in
          Some (A.Binary (op, leaf (), leaf ()))
      | "nullsafe_eq" when mysql ->
          Some (A.Binary (A.Null_safe_eq, colf (), lit ()))
      | "is_null" ->
          Some (A.Is { negated = Rng.bool rng; arg = colf (); rhs = A.Is_null })
      | "is_bool" ->
          Some
            (A.Is
               {
                 negated = Rng.bool rng;
                 arg = simple_predicate ctx;
                 rhs = (if Rng.bool rng then A.Is_true else A.Is_false);
               })
      | "is_expr" when sqlite ->
          Some
            (A.Is { negated = Rng.bool rng; arg = colf (); rhs = A.Is_expr (lit ()) })
      | "between" ->
          Some
            (A.Between
               { negated = Rng.bool rng; arg = colf (); lo = lit (); hi = lit () })
      | "in" ->
          Some
            (A.In_list
               {
                 negated = Rng.bool rng;
                 arg = colf ();
                 list = List.init (Rng.int_in rng 1 3) (fun _ -> lit ());
               })
      | "like" ->
          Some
            (A.Like
               {
                 negated = Rng.bool rng;
                 arg = colf ();
                 pattern = A.text_lit (gen_pattern rng);
                 escape = None;
               })
      | "glob" when sqlite ->
          Some
            (A.Glob
               {
                 negated = Rng.bool rng;
                 arg = colf ();
                 pattern = A.text_lit (gen_glob_pattern rng);
               })
      | "case" ->
          Some
            (A.Case
               {
                 operand = None;
                 branches = [ (simple_predicate ctx, lit ()) ];
                 else_ = Some (lit ());
               })
      | "cast" ->
          let ty =
            if mysql && Rng.bool rng then
              Datatype.Int { width = Datatype.Big; unsigned = true }
            else
              Rng.pick rng
                [
                  Datatype.Int { width = Datatype.Regular; unsigned = false };
                  Datatype.Real;
                  Datatype.Text;
                ]
          in
          Some (A.Cast (ty, leaf ()))
      | "collate" when sqlite ->
          Some
            (A.Binary
               (cmp_op (), A.Collate (colf (), Rng.pick rng Collation.all), lit ()))
      | "func" ->
          let fs =
            [ (A.F_abs, 1); (A.F_length, 1); (A.F_lower, 1); (A.F_upper, 1);
              (A.F_coalesce, 2); (A.F_nullif, 2); (A.F_trim, 1); (A.F_substr, 2);
              (A.F_hex, 1); (A.F_round, 1); (A.F_sign, 1) ]
            @ (if sqlite then [ (A.F_typeof, 1); (A.F_quote, 1) ] else [])
          in
          let f, arity = Rng.pick rng fs in
          Some (A.Func (f, List.init arity (fun _ -> leaf ())))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let condition ctx =
  match ctx.dialect with
  | Dialect.Postgres_like -> gen_pg ctx 0 P_bool
  | Dialect.Sqlite_like | Dialect.Mysql_like -> gen_free ctx 0

let scalar ctx =
  match ctx.dialect with
  | Dialect.Postgres_like ->
      gen_pg ctx 0 (Rng.pick ctx.rng [ P_int; P_real; P_text; P_bool ])
  | Dialect.Sqlite_like when Rng.chance ctx.rng 0.12 -> (
      (* TYPEOF over a column: probes sqlite's type flexibility *)
      match random_column ctx with
      | Some (col, _) -> A.Func (A.F_typeof, [ col ])
      | None -> gen_free ctx 0)
  | Dialect.Sqlite_like | Dialect.Mysql_like -> gen_free ctx 0
