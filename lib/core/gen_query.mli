(** Targeted query synthesis (paper step 5) and the containment check
    (steps 6–7).

    The rectified conditions go into WHERE and/or JOIN clauses of an
    otherwise random SELECT over the pivot tables; random "appropriate
    keywords" (DISTINCT, ORDER BY) are added.  Containment is checked the
    way the paper describes: the query is wrapped as
    [SELECT <pivot values> INTERSECT <query>], which returns a row iff the
    pivot row is contained. *)

open Sqlval

type t = {
  query : Sqlast.Ast.select;  (** the synthesized SELECT *)
  expected_row : Value.t list;
      (** the pivot's values for the selected targets *)
  raw_truths : Tvl.t list;
      (** truth values of the raw conditions before rectification *)
  provenance : (Sqlast.Ast.expr * Tvl.t * Sqlast.Ast.expr) list;
      (** per-condition [(raw, verdict, rectified)] triples, same order as
          [raw_truths]; the flight recorder turns these into [Expr]
          events *)
}

(** Synthesize a query over the pivot tables whose result set must contain
    [expected_row] (or, with [~target:False] — the paper's Section 7
    future-work variant — must NOT contain it).  [check_expressions] enables the expressions-on-columns
    extension (paper Section 3.4): targets may be scalar expressions whose
    expected values the oracle interpreter computes.  Fails when the
    interpreter cannot evaluate a generated expression (the caller retries
    with a fresh expression).

    [exec_backend] (default [Interpreted]) is forwarded to the rectifier:
    under [Compiled] each condition is translated once and its
    rectification re-check reuses the memoized evaluation
    ({!Rectify.rectify}).

    [shape] (coverage-guided mode) overrides the random clause-shape
    decisions: derived-table wrapping, WHERE conjunct count, join kind,
    DISTINCT/ORDER BY/GROUP BY flags, and — when [sh_pred] is set — aims
    the first WHERE conjunct at that expression kind
    ({!Gen_expr.predicate_of_kind}).  Expression/aggregate target
    extensions are suppressed when the shape wants GROUP BY (grouping
    requires plain column targets).

    [pred] — [(pred_rng, kind)] — appends one extra rectified conjunct
    aimed at expression kind [kind], generated entirely from [pred_rng]:
    the main synthesis stream stays byte-identical to a blind run, and
    because the conjunct rectifies to TRUE for the pivot it can only
    narrow the result set around the checked row.  This is the pred-only
    guidance used while shape guidance is still warming up; ignored when
    [shape] is given (its [sh_pred] governs). *)
val synthesize :
  ?rectify:bool ->
  ?target:Tvl.t ->
  ?telemetry:Telemetry.t ->
  ?exec_backend:Engine.Exec_backend.kind ->
  ?shape:Gen_bias.shape ->
  ?pred:Rng.t * string ->
  rng:Rng.t ->
  dialect:Dialect.t ->
  pivot:(Schema_info.table_info * Value.t array) list ->
  case_sensitive_like:bool ->
  max_depth:int ->
  check_expressions:bool ->
  unit ->
  (t, string) result

(** The single-statement containment check:
    [VALUES (expected) INTERSECT query]. *)
val containment_stmt : t -> Sqlast.Ast.stmt
