open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

(* evaluations here run inside the enclosing "rectify" span and count
   toward it; the "interp" phase covers only standalone evaluations
   (scalar targets, aggregate checks, the no-rectification ablation) so
   the phase histograms partition wall time instead of double-counting *)
let eval_tvl _tele env e = Interp.eval_tvl env e

let fail tele =
  Telemetry.inc tele "pqs_rectify_postcondition_failures_total";
  Error "rectification postcondition failed"

let rectify ?(telemetry = Telemetry.noop) env (e : A.expr) =
  Telemetry.Span.timed telemetry Telemetry.Phase.Rectify (fun () ->
      let* t = eval_tvl telemetry env e in
      let rectified =
        match t with
        | Tvl.True -> e
        | Tvl.False -> A.Unary (A.Not, e)
        | Tvl.Unknown -> A.Is { negated = false; arg = e; rhs = A.Is_null }
      in
      (* the oracle double-checks its own output: the rectified expression
         must evaluate to TRUE *)
      let* check = eval_tvl telemetry env rectified in
      if Tvl.equal check Tvl.True then Ok (rectified, t) else fail telemetry)

let rectify_to_false ?(telemetry = Telemetry.noop) env (e : A.expr) =
  Telemetry.Span.timed telemetry Telemetry.Phase.Rectify (fun () ->
      let* t = eval_tvl telemetry env e in
      let rectified =
        match t with
        | Tvl.False -> e
        | Tvl.True -> A.Unary (A.Not, e)
        | Tvl.Unknown -> A.Is { negated = true; arg = e; rhs = A.Is_null }
      in
      let* check = eval_tvl telemetry env rectified in
      if Tvl.equal check Tvl.False then Ok (rectified, t) else fail telemetry)
