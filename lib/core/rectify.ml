open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

(* evaluations here run inside the enclosing "rectify" span and count
   toward it; the "interp" phase covers only standalone evaluations
   (scalar targets, aggregate checks, the no-rectification ablation) so
   the phase histograms partition wall time instead of double-counting *)
let eval_tvl _tele env e = Interp.eval_tvl env e

let fail tele =
  Telemetry.inc tele "pqs_rectify_postcondition_failures_total";
  Error "rectification postcondition failed"

(* The decoration that forces [e] (whose raw truth value is [t]) to
   [target]: identity when it already matches, NOT on a definite
   mismatch, IS [NOT] NULL on Unknown. *)
let decoration ~target ~t e =
  if Tvl.equal t target then e
  else if not (Tvl.equal t Tvl.Unknown) then A.Unary (A.Not, e)
  else
    A.Is { negated = not (Tvl.equal target Tvl.True); arg = e; rhs = A.Is_null }

(* Tree-walking rectification: up to three full walks of [e] (the raw
   evaluation, plus the decorated re-evaluation re-walking [e]). *)
let rectify_interpreted telemetry env e ~target =
  let* t = eval_tvl telemetry env e in
  let rectified = decoration ~target ~t e in
  (* the oracle double-checks its own output: the rectified expression
     must evaluate to [target] *)
  let* check = eval_tvl telemetry env rectified in
  if Tvl.equal check target then Ok (rectified, t) else fail telemetry

(* Compiled rectification: [e] is translated once ({!Interp.Compiled});
   the decorated re-evaluation shares its memoized value, so the
   postcondition check costs a combinator application instead of another
   AST walk.  The returned AST is identical to the interpreted path's. *)
let rectify_compiled telemetry env e ~target =
  let open Interp.Compiled in
  let c = compile env e in
  let* t = tvl c in
  let rectified = decoration ~target ~t e in
  let check_c =
    if Tvl.equal t target then c
    else if not (Tvl.equal t Tvl.Unknown) then not_ c
    else if Tvl.equal target Tvl.True then is_null c
    else not_ (is_null c)
  in
  let* check = tvl check_c in
  if Tvl.equal check target then Ok (rectified, t) else fail telemetry

let rectify_to ~telemetry ~backend ~target env e =
  Telemetry.Span.timed telemetry Telemetry.Phase.Rectify (fun () ->
      match backend with
      | Engine.Exec_backend.Interpreted ->
          rectify_interpreted telemetry env e ~target
      | Engine.Exec_backend.Compiled -> rectify_compiled telemetry env e ~target)

let rectify ?(telemetry = Telemetry.noop)
    ?(backend = Engine.Exec_backend.Interpreted) env (e : A.expr) =
  rectify_to ~telemetry ~backend ~target:Tvl.True env e

let rectify_to_false ?(telemetry = Telemetry.noop)
    ?(backend = Engine.Exec_backend.Interpreted) env (e : A.expr) =
  rectify_to ~telemetry ~backend ~target:Tvl.False env e
