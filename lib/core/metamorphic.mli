(** Metamorphic aggregate testing (the paper's Section 7 future work:
    "aggregate functions ... could be tested by defining metamorphic
    relations based on set operations").

    For a random condition [p] over a table [t], three-valued logic
    partitions the rows into exactly three sets — [WHERE p], [WHERE NOT p]
    and [WHERE p IS NULL] — so for any aggregate the whole-table result
    must be reconstructible from the partitions:

    - count-star over [t] = sum of the three partition counts,
    - [MIN(c)]   over [t]  =  least of the non-NULL partition minima,
    - [MAX(c)]   symmetrically.

    No oracle interpreter is needed: the engine is checked against itself,
    which also covers multi-row behaviour that PQS's single-pivot oracle
    cannot reach.  Any defect that makes a filtered scan lose or duplicate
    rows (index corruption, unsound planner pruning) breaks the relation. *)

type verdict =
  | Consistent
  | Inconsistent of string  (** description of the violated relation *)
  | Skipped  (** a sub-query failed with an expected error *)

(** One metamorphic check of a random condition against one table. *)
val check :
  Engine.Session.t ->
  rng:Rng.t ->
  table:Schema_info.table_info ->
  verdict

type stats = {
  checks : int;
  skipped : int;
  findings : (string * Sqlast.Ast.stmt list) list;
      (** violated relation + the statements leading to it, in
          chronological order *)
}

val empty_stats : stats

(** Sum the counters and append [b]'s findings after [a]'s.  Associative,
    with {!empty_stats} as left and right identity — the same monoid laws
    as [Stats.merge], so partial runs can be combined across workers. *)
val merge_stats : stats -> stats -> stats

(** Generate random databases and run metamorphic aggregate checks, like
    {!Runner.run} does for containment checks. *)
val run :
  ?seed:int ->
  ?bugs:Engine.Bug.set ->
  max_checks:int ->
  Sqlval.Dialect.t ->
  stats
