open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

type t = {
  query : A.select;
  expected_row : Value.t list;
  raw_truths : Tvl.t list;
  provenance : (A.expr * Tvl.t * A.expr) list;
}

let synthesize ?(rectify = true) ?(target = Tvl.True)
    ?(telemetry = Telemetry.noop)
    ?(exec_backend = Engine.Exec_backend.Interpreted) ?shape ?pred ~rng
    ~dialect ~pivot ~case_sensitive_like ~max_depth ~check_expressions () =
  (* derived-table wrapping (FROM (SELECT * FROM t) AS t): the subquery's
     columns are untyped and binary-collated, so the pivot's column
     metadata must be degraded identically for the oracle *)
  let wrapped =
    List.map
      (fun (ti, _) ->
        ( ti.Schema_info.ti_name,
          match shape with
          | Some s -> s.Gen_bias.sh_sub
          | None -> Rng.chance rng 0.12 ))
      pivot
  in
  let is_wrapped name =
    match List.assoc_opt name wrapped with Some b -> b | None -> false
  in
  let degrade (ti : Schema_info.table_info) =
    if not (is_wrapped ti.Schema_info.ti_name) then ti
    else
      {
        ti with
        Schema_info.ti_columns =
          List.map
            (fun (c : Schema_info.column_info) ->
              {
                c with
                Schema_info.ci_type = Sqlval.Datatype.Any;
                ci_collation = Sqlval.Collation.Binary;
              })
            ti.Schema_info.ti_columns;
      }
  in
  let pivot = List.map (fun (ti, row) -> (degrade ti, row)) pivot in
  let from_of (ti : Schema_info.table_info) : A.from_item =
    if is_wrapped ti.Schema_info.ti_name then
      A.F_sub
        {
          sub =
            A.Q_select
            {
              A.sel_distinct = false;
              sel_items = [ A.Star ];
              sel_from =
                [ A.F_table { name = ti.Schema_info.ti_name; alias = None } ];
              sel_where = None;
              sel_group_by = [];
              sel_having = None;
              sel_order_by = [];
              sel_limit = None;
              sel_offset = None;
            };
          alias = ti.Schema_info.ti_name;
        }
    else A.F_table { name = ti.Schema_info.ti_name; alias = None }
  in
  let tables = List.map fst pivot in
  let env = Interp.env_of_pivot ~case_sensitive_like dialect pivot in
  let pool =
    List.concat_map (fun (_, row) -> Array.to_list row) pivot
    |> List.filter (fun v -> not (Sqlval.Value.is_null v))
  in
  let gen_ctx = { Gen_expr.rng; dialect; tables; max_depth; pool } in
  (* one rectified condition for WHERE; with two tables, optionally a second
     one as a JOIN ON condition *)
  let truths = ref [] in
  let prov = ref [] in
  let one_condition raw =
    if rectify then
      let rectifier =
        match target with
        | Tvl.False -> Rectify.rectify_to_false
        | Tvl.True | Tvl.Unknown -> Rectify.rectify
      in
      let* c, t = rectifier ~telemetry ~backend:exec_backend env raw in
      truths := t :: !truths;
      prov := (raw, t, c) :: !prov;
      Ok c
    else
      (* no-rectification ablation: use the raw condition *)
      let* t =
        Telemetry.Span.timed telemetry Telemetry.Phase.Interp (fun () -> Interp.eval_tvl env raw)
      in
      truths := t :: !truths;
      prov := (raw, t, raw) :: !prov;
      Ok raw
  in
  let condition () =
    let raw =
      Telemetry.Span.timed telemetry Telemetry.Phase.Gen_expr (fun () ->
          if Rng.chance rng 0.5 then Gen_expr.simple_predicate gen_ctx
          else Gen_expr.condition gen_ctx)
    in
    one_condition raw
  in
  (* a conjunct aimed at the shape's cold expression kind; falls back to a
     random condition when the dialect cannot produce it *)
  let targeted_condition kind =
    let raw =
      Telemetry.Span.timed telemetry Telemetry.Phase.Gen_expr (fun () ->
          match Gen_expr.predicate_of_kind gen_ctx kind with
          | Some e -> e
          | None ->
              if Rng.chance rng 0.5 then Gen_expr.simple_predicate gen_ctx
              else Gen_expr.condition gen_ctx)
    in
    one_condition raw
  in
  (* WHERE is an AND of one to three rectified conjuncts: each conjunct is
     TRUE for the pivot, hence so is the conjunction, and bare conjuncts
     are what the planner's index paths key on *)
  let* where =
    let n =
      match shape with
      | Some s -> max 1 (min 3 s.Gen_bias.sh_where)
      | None -> Rng.pick_weighted rng [ (4, 1); (3, 2); (1, 3) ]
    in
    let rec build acc k =
      if k = 0 then Ok acc
      else
        let* c = condition () in
        build (A.Binary (A.And, acc, c)) (k - 1)
    in
    let* first =
      match shape with
      | Some { Gen_bias.sh_pred = Some kind; _ } -> targeted_condition kind
      | _ -> condition ()
    in
    build first (n - 1)
  in
  (* pred-only guidance: one extra rectified conjunct aimed at a cold
     expression kind, drawn from the guidance RNG so the main synthesis
     stream stays byte-identical to a blind run.  Rectification keeps the
     conjunct TRUE for the pivot, so it can only narrow the result set
     around the row the oracle checks — a blind run's detections are
     preserved and the targeted kind is exercised on top (a conjunct that
     fails to rectify is simply dropped) *)
  let* where =
    match (shape, pred) with
    | None, Some (pred_rng, kind) -> (
        let pctx = { gen_ctx with Gen_expr.rng = pred_rng } in
        match Gen_expr.predicate_of_kind pctx kind with
        | None -> Ok where
        | Some raw -> (
            match one_condition raw with
            | Ok c -> Ok (A.Binary (A.And, where, c))
            | Error _ -> Ok where))
    | _ -> Ok where
  in
  let* from, where =
    match tables with
    | [ t0 ] -> Ok ([ from_of t0 ], where)
    | [ t0; t1 ] ->
        let explicit, kind =
          match shape with
          | Some s -> (
              match s.Gen_bias.sh_join with
              | `Inner -> (true, A.Inner)
              | `Left -> (true, A.Left)
              | `Cross | `Single -> (false, A.Inner))
          | None ->
              if Rng.chance rng 0.4 then
                (true, if Rng.chance rng 0.2 then A.Left else A.Inner)
              else (false, A.Inner)
        in
        if explicit then
          (* explicit JOIN with a rectified ON *)
          let* on = condition () in
          Ok
            ( [
                A.F_join
                  { kind; left = from_of t0; right = from_of t1; on = Some on };
              ],
              where )
        else Ok ([ from_of t0; from_of t1 ], where)
    | ts -> Ok (List.map from_of ts, where)
  in
  (* targets: every column of every pivot table, qualified; with the
     expressions-on-columns extension some targets become scalar
     expressions evaluated by the oracle *)
  let column_targets =
    List.concat_map
      (fun ((ti : Schema_info.table_info), values) ->
        List.mapi
          (fun i (c : Schema_info.column_info) ->
            ( A.Col
                {
                  table = Some ti.Schema_info.ti_name;
                  column = c.Schema_info.ci_name;
                },
              values.(i) ))
          ti.Schema_info.ti_columns)
      pivot
  in
  (* a shape with GROUP BY needs every target to stay a plain column, so
     the expression/aggregate target extensions are suppressed for it *)
  let want_group = match shape with Some s -> s.Gen_bias.sh_group | None -> false in
  let* targets =
    if
      check_expressions && column_targets <> [] && (not want_group)
      && Rng.chance rng 0.5
    then begin
      (* replace a random target with a scalar expression *)
      let n = List.length column_targets in
      let k = Rng.int rng n in
      let rec build i acc = function
        | [] -> Ok (List.rev acc)
        | (col, v) :: rest ->
            if i = k then
              let e =
                Telemetry.Span.timed telemetry Telemetry.Phase.Gen_expr (fun () ->
                    Gen_expr.scalar gen_ctx)
              in
              let* ev =
                Telemetry.Span.timed telemetry Telemetry.Phase.Interp (fun () -> Interp.eval env e)
              in
              build (i + 1) ((e, ev) :: acc) rest
            else build (i + 1) ((col, v) :: acc) rest
      in
      build 0 [] column_targets
    end
    else Ok column_targets
  in
  let* () = if targets = [] then Error "no columns to select" else Ok () in
  (* single-row aggregate testing (paper Section 3.2: aggregates can be
     partially tested when only a single row is present) *)
  let* targets =
    match pivot with
    | [ (ti, _) ]
      when ti.Schema_info.ti_row_count = 1 && (not want_group)
           && Rng.chance rng 0.25 ->
        let scalar_e =
          Telemetry.Span.timed telemetry Telemetry.Phase.Gen_expr (fun () ->
              Gen_expr.scalar gen_ctx)
        in
        let* v =
          Telemetry.Span.timed telemetry Telemetry.Phase.Interp (fun () ->
              Interp.eval env scalar_e)
        in
        let agg =
          Rng.pick rng [ Sqlast.Ast.A_min; Sqlast.Ast.A_max ]
        in
        Ok (targets @ [ (A.Agg (agg, Some scalar_e), v) ])
    | _ -> Ok targets
  in
  (* GROUP BY over all selected plain columns: every distinct row is its
     own group, so the pivot row must still be contained (the Listing 15
     shape) *)
  let group_by =
    let all_plain_cols =
      List.for_all
        (fun (e, _) -> match e with A.Col _ -> true | _ -> false)
        targets
    in
    if
      all_plain_cols && List.length pivot = 1
      && (match shape with
         | Some s -> s.Gen_bias.sh_group
         | None -> Rng.chance rng 0.3)
    then List.map fst targets
    else []
  in
  let order_by =
    let want =
      match shape with Some s -> s.Gen_bias.sh_order | None -> Rng.chance rng 0.3
    in
    if want then
      let e, _ = Rng.pick rng targets in
      [ (e, if Rng.bool rng then A.Asc else A.Desc) ]
    else []
  in
  let query =
    {
      A.sel_distinct =
        (match shape with
        | Some s -> s.Gen_bias.sh_distinct
        | None -> Rng.chance rng 0.4);
      sel_items = List.map (fun (e, _) -> A.Sel_expr (e, None)) targets;
      sel_from = from;
      sel_where = Some where;
      sel_group_by = group_by;
      sel_having = None;
      sel_order_by = order_by;
      sel_limit = None;
      sel_offset = None;
    }
  in
  Ok
    {
      query;
      expected_row = List.map snd targets;
      raw_truths = !truths;
      provenance = !prov;
    }

let containment_stmt t =
  let values_row = List.map (fun v -> A.Lit v) t.expected_row in
  A.Select_stmt
    (A.Q_compound (A.Intersect, A.Q_values [ values_row ], A.Q_select t.query))
