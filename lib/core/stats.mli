(** Immutable run statistics.

    The old [Runner.stats] was a mutable record that could not be shared or
    merged across workers.  [Stats.t] is a pure value: every runner round
    produces one, and campaigns combine them with {!merge}, which is
    associative with {!empty} as identity — so an N-domain campaign folded
    in seed order reports exactly the same totals (and the same report
    list) as a sequential run over the same seeds. *)

open Sqlval

type t = {
  databases : int;
  pivots : int;
  queries : int;  (** containment checks issued *)
  statements : int;
  interp_failures : int;
      (** expressions the oracle could not evaluate (regenerated) *)
  false_positives : int;
      (** containment misses not confirmed by the correct engine *)
  reports : Bug_report.t list;  (** in chronological order *)
  truth_values : (Tvl.t * int) list;
      (** distribution of raw condition truth values before rectification,
          always in canonical [TRUE; FALSE; UNKNOWN] key order *)
  negative_checks : int;
      (** how many checks were of the non-containment variant *)
  lint_checks : int;
      (** statements and plans analyzed by the [lint] self-check oracle *)
  lint_diagnostics : int;
      (** lint-oracle reports recorded (each carries >= 1 diagnostic) *)
  plan_checks : int;
      (** containment checks the plan-diff oracle re-executed under forced
          plans *)
  plan_divergences : int;
      (** plan-diff oracle reports recorded (cross-plan result
          disagreements) *)
  const_checks : int;
      (** containment checks the const-opt oracle re-executed after
          constant substitution and simplification *)
  const_divergences : int;
      (** const-opt oracle reports recorded (original vs simplified
          result disagreements) *)
  frontier : Frontier.t;
      (** coverage frontier: clause-combination / expression-kind /
          planner-path points the run exercised ({!Gen_bias} owns the
          vocabulary); merged with [Frontier.union], whose canonical
          representation keeps structural equality intact for the
          determinism tests *)
}

val empty : t

(** [merge a b] adds every counter, appends [b]'s reports after [a]'s and
    sums the truth-value distributions.  Associative; [empty] is a left and
    right identity (truth values are kept in canonical key order, which
    both [empty] and {!bump_truth} maintain). *)
val merge : t -> t -> t

(** Fold {!merge} over the list, left to right, starting from {!empty}. *)
val merge_all : t list -> t

(** Append one report (chronologically last). *)
val add_report : t -> Bug_report.t -> t

(** Count one raw truth value. *)
val bump_truth : t -> Tvl.t -> t

(** One-line [key=value] summary for CLIs and traces. *)
val summary : t -> string

val pp : Format.formatter -> t -> unit
