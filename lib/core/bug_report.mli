(** Bug reports produced by the PQS oracles. *)

open Sqlval

type oracle =
  | Containment
  | Non_containment
      (** the rectified-to-FALSE variant: the pivot row was unexpectedly
          contained (paper Section 7 extension) *)
  | Error_oracle
  | Crash
  | Metamorphic
      (** an aggregate partition relation was violated (paper Section 7
          future work; see {!Metamorphic} and [Oracle.metamorphic]) *)
  | Lint
      (** the static analyzer found an ill-typed tree or an inconsistent
          access plan (see [Analysis] and [Lint.oracle]) *)
  | Plan_diff
      (** the same query returned different result multisets under two
          enumerated access plans (see [Plan_diff.oracle]) *)
  | Const_opt
      (** folding the pivot row's values into the query as constants and
          simplifying changed the containment verdict (CODDTest-style
          constant-optimization oracle; see [Const_opt.oracle]) *)

val pp_oracle : Format.formatter -> oracle -> unit
val show_oracle : oracle -> string
val equal_oracle : oracle -> oracle -> bool

(** The display label used by the evaluation tables (paper Table 3 column
    names: Contains / Error / SEGFAULT). *)
val oracle_label : oracle -> string

(** Stable machine-readable token ([containment], [error], [crash], ...)
    written into repro-bundle headers and parsed back by the replay
    harness. *)
val oracle_token : oracle -> string

val oracle_of_token : string -> oracle option

type t = {
  dialect : Dialect.t;
  oracle : oracle;
  message : string;  (** what the oracle observed *)
  statements : Sqlast.Ast.stmt list;
      (** full reproduction script, the offending statement last *)
  reduced : Sqlast.Ast.stmt list option;  (** after test-case reduction *)
  seed : int;
  phase : string;
      (** funnel phase in which the oracle fired ([gen_db],
          [database_ready], [containment], ...) *)
  bundle : string option;
      (** path of the repro bundle's [repro.sql], when one was written *)
}

val pp : Format.formatter -> t -> unit

(** The reproduction script as SQL text (reduced if available), one
    statement per line — the unit in which the paper counts test-case LOC
    (Figure 2). *)
val script : t -> string

val loc : t -> int

(** Deduplication fingerprint: hex digest of the oracle token plus the
    (reduced) reproduction script.  Reduction is deterministic, so the
    same underlying bug found by different shards fingerprints
    identically — fleet-wide dedup keys on this. *)
val fingerprint : t -> string
