(** Random expression generation (paper Algorithm 1).

    Expressions are ASTs over the schema's column names and random
    constants, bounded by [max_depth].  For the sqlite-like and mysql-like
    dialects any type is acceptable in a boolean context (implicit
    conversions); for the postgres-like dialect generation is type-directed
    and the root must be boolean (paper Section 3.2). *)

open Sqlval

type ctx = {
  rng : Rng.t;
  dialect : Dialect.t;
  tables : Schema_info.table_info list;  (** tables in scope *)
  max_depth : int;
  pool : Sqlval.Value.t list;
      (** values present in the database: literal generation is biased
          toward small mutations of them (trailing spaces, case flips,
          off-by-one), which is what makes collation/affinity bug classes
          reachable within realistic budgets *)
}

(** A condition candidate for WHERE/JOIN (boolean-valued root for
    postgres). *)
val condition : ctx -> Sqlast.Ast.expr

(** An arbitrary scalar expression (used by the expressions-on-columns
    extension of paper Section 3.4). *)
val scalar : ctx -> Sqlast.Ast.expr

(** A bare column-vs-literal predicate (comparison, IS, LIKE, BETWEEN, IN)
    used as a WHERE conjunct; these shapes are what index access paths key
    on. *)
val simple_predicate : ctx -> Sqlast.Ast.expr

(** A WHERE-suitable predicate exercising the given expression kind (a
    [Gen_bias] expression-kind token such as ["between"] or ["collate"]):
    coverage-guided generation uses it to aim a conjunct at a cold
    frontier point.  [None] when the dialect cannot produce the kind
    (e.g. ["glob"] outside sqlite) — shapes only compose constructors the
    blind generators already emit. *)
val predicate_of_kind : ctx -> string -> Sqlast.Ast.expr option

(** A random constant of a random type suitable for the dialect. *)
val literal : Rng.t -> Dialect.t -> Value.t

(** A literal whose value can be stored in a column of the given type in
    the given dialect without erroring (used by INSERT generation). *)
val literal_for_column : Rng.t -> Dialect.t -> Datatype.t -> Value.t
