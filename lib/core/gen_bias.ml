open Sqlval
module A = Sqlast.Ast

type shape = {
  sh_tables : int;
  sh_join : [ `Single | `Cross | `Inner | `Left ];
  sh_sub : bool;
  sh_where : int;
  sh_distinct : bool;
  sh_order : bool;
  sh_group : bool;
  sh_pred : string option;
}

(* ------------------------------------------------------------------ *)
(* Shape points                                                         *)

let join_token = function
  | `Single -> "single"
  | `Cross -> "cross"
  | `Inner -> "inner"
  | `Left -> "left"

let join_of_token = function
  | "single" -> Some `Single
  | "cross" -> Some `Cross
  | "inner" -> Some `Inner
  | "left" -> Some `Left
  | _ -> None

let b01 b = if b then 1 else 0

let point_of_shape s =
  Printf.sprintf "shape.j%s.v%d.w%d.d%d.o%d.g%d" (join_token s.sh_join)
    (b01 s.sh_sub)
    (max 1 (min 3 s.sh_where))
    (b01 s.sh_distinct) (b01 s.sh_order) (b01 s.sh_group)

let field prefix s =
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let flag prefix s =
  match field prefix s with
  | Some "0" -> Some false
  | Some "1" -> Some true
  | _ -> None

let shape_of_point p =
  match String.split_on_char '.' p with
  | [ "shape"; j; v; w; d; o; g ] -> (
      match
        ( Option.bind (field "j" j) join_of_token,
          flag "v" v,
          field "w" w,
          flag "d" d,
          flag "o" o,
          flag "g" g )
      with
      | Some join, Some sub, Some w, Some d, Some o, Some g
        when w = "1" || w = "2" || w = "3" ->
          Some
            {
              sh_tables = (match join with `Single -> 1 | _ -> 2);
              sh_join = join;
              sh_sub = sub;
              sh_where = int_of_string w;
              sh_distinct = d;
              sh_order = o;
              sh_group = g;
              sh_pred = None;
            }
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fingerprinting                                                       *)

let kind_of_node = function
  | A.Lit _ | A.Col _ -> None
  | A.Unary (A.Not, _) -> Some "not"
  | A.Unary ((A.Neg | A.Pos | A.Bit_not), _) -> Some "unary"
  | A.Binary (op, _, _) ->
      Some
        (match op with
        | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge -> "cmp"
        | A.Null_safe_eq -> "nullsafe_eq"
        | A.And | A.Or -> "logic"
        | A.Add | A.Sub | A.Mul | A.Div | A.Rem -> "arith"
        | A.Concat -> "concat"
        | A.Bit_and | A.Bit_or | A.Shift_left | A.Shift_right -> "bitop")
  | A.Is { rhs = A.Is_null; _ } -> Some "is_null"
  | A.Is { rhs = A.Is_true | A.Is_false; _ } -> Some "is_bool"
  | A.Is { rhs = A.Is_expr _; _ } -> Some "is_expr"
  | A.Is { rhs = A.Is_distinct_from _; _ } -> Some "is_distinct"
  | A.Between _ -> Some "between"
  | A.In_list _ -> Some "in"
  | A.Like _ -> Some "like"
  | A.Glob _ -> Some "glob"
  | A.Cast _ -> Some "cast"
  | A.Func _ -> Some "func"
  | A.Agg _ -> Some "agg"
  | A.Case _ -> Some "case"
  | A.Collate _ -> Some "collate"

let rec exprs_of_from = function
  | A.F_table _ -> []
  | A.F_join { left; right; on; _ } ->
      exprs_of_from left @ exprs_of_from right @ Option.to_list on
  | A.F_sub { sub; _ } -> exprs_of_query sub

and exprs_of_query = function
  | A.Q_select s -> exprs_of_select s
  | A.Q_values rows -> List.concat rows
  | A.Q_compound (_, a, b) -> exprs_of_query a @ exprs_of_query b

and exprs_of_select (s : A.select) =
  List.filter_map
    (function A.Sel_expr (e, _) -> Some e | A.Star | A.Table_star _ -> None)
    s.sel_items
  @ List.concat_map exprs_of_from s.sel_from
  @ Option.to_list s.sel_where @ s.sel_group_by
  @ Option.to_list s.sel_having
  @ List.map fst s.sel_order_by

let rec conjuncts = function
  | A.Binary (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec from_has_sub = function
  | A.F_table _ -> false
  | A.F_sub _ -> true
  | A.F_join { left; right; _ } -> from_has_sub left || from_has_sub right

let shape_of_select (s : A.select) =
  let join =
    match s.sel_from with
    | [ A.F_join { kind = A.Inner; _ } ] -> `Inner
    | [ A.F_join { kind = A.Left; _ } ] -> `Left
    | [ A.F_join { kind = A.Cross; _ } ] -> `Cross
    | [ _ ] -> `Single
    | _ -> `Cross
  in
  {
    sh_tables = (match join with `Single -> 1 | _ -> 2);
    sh_join = join;
    sh_sub = List.exists from_has_sub s.sel_from;
    sh_where =
      (match s.sel_where with
      | None -> 1
      | Some w -> min 3 (List.length (conjuncts w)));
    sh_distinct = s.sel_distinct;
    sh_order = s.sel_order_by <> [];
    sh_group = s.sel_group_by <> [];
    sh_pred = None;
  }

let fingerprint (s : A.select) =
  let expr_points =
    List.concat_map
      (fun e ->
        A.fold_expr
          (fun acc n ->
            match kind_of_node n with
            | Some k -> ("expr." ^ k) :: acc
            | None -> acc)
          [] e
        |> List.rev)
      (exprs_of_select s)
  in
  point_of_shape (shape_of_select s) :: expr_points

(* ------------------------------------------------------------------ *)
(* Per-dialect universe                                                 *)

let shape_points =
  (* GROUP BY is only generated over a single pivot table (every selected
     column must be plain and grouping needs one source), so g=1 combos
     exist only under jsingle *)
  List.concat_map
    (fun j ->
      List.concat_map
        (fun v ->
          List.concat_map
            (fun w ->
              List.concat_map
                (fun d ->
                  List.concat_map
                    (fun o ->
                      let gs = if j = `Single then [ false; true ] else [ false ] in
                      List.map
                        (fun g ->
                          point_of_shape
                            {
                              sh_tables = (match j with `Single -> 1 | _ -> 2);
                              sh_join = j;
                              sh_sub = v;
                              sh_where = w;
                              sh_distinct = d;
                              sh_order = o;
                              sh_group = g;
                              sh_pred = None;
                            })
                        gs)
                    [ false; true ])
                [ false; true ])
            [ 1; 2; 3 ])
        [ false; true ])
    [ `Single; `Cross; `Inner; `Left ]

let expr_kinds = function
  | Dialect.Sqlite_like ->
      [ "cmp"; "logic"; "not"; "unary"; "arith"; "concat"; "bitop"; "is_null";
        "is_bool"; "is_expr"; "between"; "in"; "like"; "glob"; "case"; "cast";
        "collate"; "func"; "agg" ]
  | Dialect.Mysql_like ->
      [ "cmp"; "logic"; "not"; "unary"; "arith"; "bitop"; "nullsafe_eq";
        "is_null"; "is_bool"; "between"; "in"; "like"; "case"; "cast"; "func";
        "agg" ]
  | Dialect.Postgres_like ->
      [ "cmp"; "logic"; "not"; "unary"; "arith"; "concat"; "is_null";
        "is_bool"; "is_distinct"; "between"; "in"; "like"; "case"; "cast";
        "func"; "agg" ]

let plan_points dialect =
  let base =
    [ "full_scan"; "index_eq"; "index_range"; "index_like_prefix";
      "partial_index"; "skip_scan"; "desc_index"; "or_union" ]
  in
  let base =
    (* partial indexes are never generated for the mysql-like dialect
       (Gen_db gates CREATE INDEX ... WHERE on sqlite/postgres) *)
    if Dialect.equal dialect Dialect.Mysql_like then
      List.filter (fun p -> p <> "partial_index") base
    else base
  in
  List.map (fun p -> "plan." ^ p) base

let universe dialect =
  shape_points
  @ List.map (fun k -> "expr." ^ k) (expr_kinds dialect)
  @ plan_points dialect

(* ------------------------------------------------------------------ *)
(* Guided shape planning                                                *)

let coldest_of rng frontier points =
  match points with
  | [] -> None
  | _ ->
      let m =
        List.fold_left (fun m p -> min m (Frontier.hits frontier p)) max_int
          points
      in
      Some (Rng.pick rng (List.filter (fun p -> Frontier.hits frontier p = m) points))

let cold_pred ~rng ~dialect frontier =
  (* aggregates cannot appear in WHERE, so they are not a valid conjunct
     target (the single-row aggregate extension hits expr.agg through the
     select list instead) *)
  expr_kinds dialect
  |> List.filter (fun k -> k <> "agg")
  |> List.map (fun k -> "expr." ^ k)
  |> coldest_of rng frontier
  |> Option.map (fun p -> String.sub p 5 (String.length p - 5))

let plan ~rng ~dialect frontier =
  (* Shape guidance is corrective, not a replacement sampler.  Against a
     mostly cold frontier "aim at the coldest point" degenerates into
     uniform shape sampling, which hunts strictly worse than the tuned
     blind distribution — so blind sampling keeps the wheel (and keeps
     feeding the frontier) while guidance takes over a growing fraction
     of pivots as coverage warms, when the still-cold points are exactly
     the rare combinations the blind sampler would take longest to
     reach.  (Predicate-kind rotation has no such failure mode — the kind
     vocabulary warms within a few rounds — so {!cold_pred} is worth
     applying from the start.) *)
  let total = List.length shape_points in
  let warm =
    List.length
      (List.filter (fun p -> Frontier.hits frontier p > 0) shape_points)
  in
  let guide_prob = 0.8 *. float_of_int warm /. float_of_int total in
  if not (Rng.chance rng guide_prob) then None
  else
    match coldest_of rng frontier shape_points with
  | None -> None
  | Some point -> (
      match shape_of_point point with
      | None -> None
      | Some s ->
          let pred = cold_pred ~rng ~dialect frontier in
          Some { s with sh_pred = pred })
