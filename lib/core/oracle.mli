(** Pluggable test oracles.

    The paper hard-wires three oracles into the main loop: containment
    (steps 6–7), expected errors, and crashes.  Follow-on systems host many
    more behind the same generate/check skeleton, so the runner exposes
    them as first-class values of signature {!S}: the runner emits
    {!event}s — one per executed statement, one per synthesized containment
    check, one when a database finishes generating — and each oracle in
    [Runner.Config.oracles] maps the event to a {!verdict}.  The first
    [Report] verdict of the round wins and becomes a {!Bug_report.t}.

    Oracles must be deterministic functions of the [context] and [event]
    (draw randomness only from [ctx_rng]) so that campaign runs merge
    deterministically across workers. *)

open Sqlval

(** Everything an oracle may inspect.  [ctx_rng] is a private random
    stream, seeded from the database seed independently of the generator's
    stream, so observing it never perturbs query synthesis. *)
type context = {
  ctx_dialect : Dialect.t;
  ctx_session : Engine.Session.t;
  ctx_db_seed : int;
  ctx_rng : Rng.t;
  ctx_telemetry : Telemetry.t;
      (** the runner's registry ({!Telemetry.noop} unless enabled); oracles
          may time themselves into it but must not branch on it *)
}

(** How one statement execution ended. *)
type outcome =
  | Succeeded of Engine.Session.exec_result
  | Failed of Engine.Errors.t
  | Crashed of string  (** the simulated SEGFAULT *)

(** One synthesized containment check (paper steps 3–7). *)
type check = {
  check_stmt : Sqlast.Ast.stmt;
  negative : bool;
      (** rectified-to-FALSE variant: the pivot row must be absent *)
  pivot_found : bool;  (** did the result set contain the pivot row? *)
  check_pivot : (Schema_info.table_info * Value.t array) list;
      (** the pivot row(s) the check was synthesized from, one per FROM
          source (paper step 2); value-level oracles (const-opt) fold
          these into the query as constants *)
}

type event =
  | Statement of Sqlast.Ast.stmt * outcome
      (** any statement the runner executed, including the containment
          query itself when it errors or crashes *)
  | Containment_check of check
      (** a containment query that returned a result set *)
  | Database_ready
      (** database generation finished; whole-database oracles (e.g.
          metamorphic partition checks) run here against [ctx_session] *)

type verdict =
  | Pass
  | Report of { kind : Bug_report.oracle; message : string }

(** The ORACLE signature. *)
module type S = sig
  val name : string
  val observe : context -> event -> verdict
end

type t = (module S)

val name : t -> string
val observe : t -> context -> event -> verdict

(** Build an oracle from a function (stub oracles, tests, one-offs). *)
val make : name:string -> (context -> event -> verdict) -> t

(** The paper's error oracle: any statement error not in the
    {!Expected_errors} whitelist. *)
val error_oracle : t

(** The paper's crash oracle: simulated SEGFAULTs. *)
val crash_oracle : t

(** The pivoted-query containment oracle, both polarities: a positive
    check whose result set misses the pivot row, or a negative
    (rectified-to-FALSE) check that contains it. *)
val containment : t

(** Metamorphic aggregate-partition oracle (paper Section 7 future work):
    on [Database_ready], checks up to [checks_per_db] random partition
    relations via {!Metamorphic.check}.  Reports under
    {!Bug_report.Metamorphic}. *)
val metamorphic : ?checks_per_db:int -> unit -> t

(** [error_oracle; crash_oracle; containment] — the paper's oracle set and
    the runner default. *)
val defaults : t list

(** Fold the oracles over an event; the first [Report] wins. *)
val first_report :
  t list -> context -> event -> (Bug_report.oracle * string) option

(** The oracle registry: one table mapping an oracle's stable name to its
    constructor, documentation, CLI flag, report kinds and
    reduction-recheck strategy.  The CLI's oracle flags, the reducer's
    manifestation checks and the replay harness's recheckability arms all
    derive from it, so adding an oracle means registering one entry
    instead of editing three dispatchers.

    The paper's trio and the metamorphic oracle register here; [Lint] and
    [Plan_diff] self-register at the bottom of their modules (the [pqs]
    library is linked with [-linkall] so registration is unconditional). *)
module Registry : sig
  (** How a report of this oracle is re-checked when the reducer shrinks
      its statement list (see [Reducer.manifestation_check]). *)
  type recheck =
    | Not_recheckable
        (** the verdict is not re-derivable from the statement list alone
            (metamorphic, lint); reduction is a no-op and replay trusts
            the bundle *)
    | Replay_outcome
        (** re-run the script and decide from the replay outcome (crash /
            unexpected error / final SELECT row count vs ground truth) *)
    | Custom of
        (dialect:Sqlval.Dialect.t ->
        bugs:Engine.Bug.set ->
        oracle:Bug_report.oracle ->
        Sqlast.Ast.stmt list ->
        bool)  (** oracle-specific recheck (plan-diff re-runs all plans) *)

  type entry = {
    reg_name : string;  (** stable identifier, e.g. ["plan_diff"] *)
    reg_doc : string;  (** one-line description (also the CLI flag doc) *)
    reg_flag : string option;
        (** CLI flag that adds the oracle to a run ([--metamorphic],
            [--lint], [--plan-diff]); [None] for always-on defaults *)
    reg_default : bool;  (** member of {!defaults} *)
    reg_kinds : Bug_report.oracle list;
        (** report kinds this oracle emits (containment covers both
            polarities) *)
    reg_make : unit -> t;  (** fresh instance with default parameters *)
    reg_recheck : recheck;
  }

  val register : entry -> unit
  (** Insert (or, by name, replace) an entry.  Registration order is
      display order. *)

  val all : unit -> entry list
  val find : string -> entry option

  (** The entry whose [reg_kinds] contains the report kind. *)
  val find_kind : Bug_report.oracle -> entry option
end
