module A = Sqlast.Ast

type check = A.stmt list -> bool

type replay_outcome = {
  crashed : bool;
  unexpected_error : bool;
  final_select_rows : int option;
      (* None when the final statement is not a row-returning SELECT or it
         errored *)
  any_error_message : string option;
}

let replay ~dialect ~bugs (stmts : A.stmt list) : replay_outcome =
  let session = Engine.Session.create ~bugs dialect in
  let crashed = ref false in
  let unexpected = ref false in
  let last_rows = ref None in
  let err_msg = ref None in
  let n = List.length stmts in
  (try
     List.iteri
       (fun i stmt ->
         if not !crashed then
           match Engine.Session.execute session stmt with
           | Ok (Engine.Session.Rows rs) ->
               if i = n - 1 then
                 last_rows := Some (List.length rs.Engine.Executor.rs_rows)
           | Ok _ -> ()
           | Error e ->
               if not (Expected_errors.is_expected dialect stmt e) then begin
                 unexpected := true;
                 if !err_msg = None then err_msg := Some (Engine.Errors.show e)
               end)
       stmts
   with Engine.Errors.Crash msg ->
     crashed := true;
     err_msg := Some msg);
  {
    crashed = !crashed;
    unexpected_error = !unexpected;
    final_select_rows = !last_rows;
    any_error_message = !err_msg;
  }

(* the [Replay_outcome] recheck strategy: re-run the script and decide
   from how it ended *)
let replay_check ~dialect ~bugs ~oracle stmts =
  match oracle with
  | Bug_report.Crash -> (replay ~dialect ~bugs stmts).crashed
  | Bug_report.Error_oracle ->
      let o = replay ~dialect ~bugs stmts in
      o.unexpected_error && not o.crashed
  | Bug_report.Containment -> (
      let buggy = replay ~dialect ~bugs stmts in
      match buggy.final_select_rows with
      | Some 0 -> (
          (* ground truth: a correct engine must fetch the pivot row *)
          let correct = replay ~dialect ~bugs:Engine.Bug.empty_set stmts in
          match correct.final_select_rows with
          | Some n when n > 0 -> true
          | _ -> false)
      | _ -> false)
  | Bug_report.Non_containment -> (
      (* inverted: the buggy engine fetches a row the correct one must
         not *)
      let buggy = replay ~dialect ~bugs stmts in
      match buggy.final_select_rows with
      | Some n when n > 0 -> (
          let correct = replay ~dialect ~bugs:Engine.Bug.empty_set stmts in
          match correct.final_select_rows with
          | Some 0 -> true
          | _ -> false)
      | _ -> false)
  | Bug_report.Metamorphic | Bug_report.Lint | Bug_report.Plan_diff
  | Bug_report.Const_opt ->
      (* these kinds declare [Not_recheckable] or [Custom] strategies in
         the registry; reaching here means a registration is missing *)
      false

(* dispatch on the registry's per-oracle recheck strategy; an unknown
   kind falls back to the replay strategy (which rejects it) *)
let manifestation_check ~dialect ~bugs ~oracle : check =
 fun stmts ->
  match Oracle.Registry.find_kind oracle with
  | Some { Oracle.Registry.reg_recheck = Oracle.Registry.Not_recheckable; _ }
    ->
      false
  | Some { Oracle.Registry.reg_recheck = Oracle.Registry.Custom f; _ } ->
      f ~dialect ~bugs ~oracle stmts
  | Some { Oracle.Registry.reg_recheck = Oracle.Registry.Replay_outcome; _ }
  | None ->
      replay_check ~dialect ~bugs ~oracle stmts

(* one pass of greedy single-statement deletion; [keep_last] protects the
   detecting query *)
let drop_pass check stmts =
  let n = List.length stmts in
  let rec go i current =
    if i >= List.length current - 1 then current
    else
      let candidate = List.filteri (fun j _ -> j <> i) current in
      if List.length candidate < List.length current && check candidate then
        go i candidate
      else go (i + 1) current
  in
  ignore n;
  go 0 stmts

(* trim multi-row INSERTs row by row *)
let trim_inserts check stmts =
  let try_trim i stmt current =
    match stmt with
    | A.Insert ({ rows; _ } as ins) when List.length rows > 1 ->
        let rec shrink rows_left =
          if List.length rows_left <= 1 then rows_left
          else
            let candidate_rows =
              List.filteri (fun j _ -> j <> 0) rows_left
            in
            let candidate =
              List.mapi
                (fun j s ->
                  if j = i then A.Insert { ins with rows = candidate_rows }
                  else s)
                current
            in
            if check candidate then shrink candidate_rows else rows_left
        in
        let final_rows = shrink rows in
        List.mapi
          (fun j s ->
            if j = i then A.Insert { ins with rows = final_rows } else s)
          current
    | _ -> current
  in
  List.fold_left
    (fun current i -> try_trim i (List.nth current i) current)
    stmts
    (List.init (List.length stmts) (fun i -> i))

(* strip decorations from the final SELECT *)
let simplify_final check stmts =
  match List.rev stmts with
  | A.Select_stmt q :: rest_rev -> (
      let with_final q' = List.rev (A.Select_stmt q' :: rest_rev) in
      let try_variant q' current =
        let candidate = with_final q' in
        if check candidate then candidate else current
      in
      match q with
      | A.Q_compound (op, lhs, A.Q_select sel) ->
          let current = stmts in
          let current =
            if sel.A.sel_order_by <> [] then
              try_variant
                (A.Q_compound (op, lhs, A.Q_select { sel with A.sel_order_by = [] }))
                current
            else current
          in
          (* re-extract the (possibly simplified) select *)
          let sel' =
            match List.rev current with
            | A.Select_stmt (A.Q_compound (_, _, A.Q_select s)) :: _ -> s
            | _ -> sel
          in
          if sel'.A.sel_distinct then
            try_variant
              (A.Q_compound (op, lhs, A.Q_select { sel' with A.sel_distinct = false }))
              current
          else current
      | _ -> stmts)
  | _ -> stmts

let reduce check stmts =
  if not (check stmts) then stmts
  else begin
    let rec fixpoint current =
      let next = drop_pass check current in
      if List.length next < List.length current then fixpoint next else next
    in
    let reduced = fixpoint stmts in
    let reduced = trim_inserts check reduced in
    simplify_final check reduced
  end

let reduce_report (report : Bug_report.t) ~bugs =
  let check =
    manifestation_check ~dialect:report.Bug_report.dialect ~bugs
      ~oracle:report.Bug_report.oracle
  in
  let reduced = reduce check report.Bug_report.statements in
  (* keep the repro bundle in sync: its script is re-derived from the
     minimized statements (header preserved, [-- reduced: true] added) *)
  (match report.Bug_report.bundle with
  | Some sql_path when List.length reduced < List.length report.Bug_report.statements
    -> (
      try
        Trace.Bundle.rewrite_script ~sql_path
          ~dialect:report.Bug_report.dialect reduced
      with Sys_error _ -> ())
  | _ -> ());
  { report with Bug_report.reduced = Some reduced }
