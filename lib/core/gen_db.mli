(** Random database generation (paper step 1 and Section 3.3).

    Creates tables with CREATE TABLE, fills them with INSERT, and explores
    the state space with further DDL/DML: UPDATE, DELETE, ALTER TABLE,
    CREATE INDEX (incl. unique/partial/expression/collated indexes), views,
    run-time options, and the dialect-specific statements the paper calls
    out (REPAIR/CHECK TABLE for mysql; DISCARD and CREATE STATISTICS for
    postgres; PRAGMA, VACUUM and REINDEX for sqlite). *)

(** Generation configuration, built with {!Config.make} and narrowed with
    the [with_*] setters:

    {[
      Gen_db.Config.(make dialect |> with_rng rng |> with_max_rows 5)
    ]}

    The record is private: read any field, but construct and update only
    through the builder, so new knobs can be added without breaking
    callers. *)
module Config : sig
  type t = private {
    rng : Rng.t;
    dialect : Sqlval.Dialect.t;
    table_count : int;  (** tables per database (paper uses few) *)
    max_columns : int;
    min_rows : int;  (** paper Section 3.4: low row counts (10–30) *)
    max_rows : int;
    extra_statements : int;  (** additional random DDL/DML statements *)
  }

  (** Defaults: 2 tables, 3 columns, 1–6 rows, 8 extra statements; [seed]
      (default 1) seeds a fresh {!Rng.t}. *)
  val make : ?seed:int -> Sqlval.Dialect.t -> t

  val with_rng : Rng.t -> t -> t
  val with_table_count : int -> t -> t
  val with_max_columns : int -> t -> t
  val with_min_rows : int -> t -> t
  val with_max_rows : int -> t -> t
  val with_extra_statements : int -> t -> t
end

type config = Config.t

(** The CREATE TABLE statements opening a database round. *)
val initial_statements : config -> Sqlast.Ast.stmt list

(** INSERTs that bring every table to at least [min_rows] rows (the paper
    ensures each table holds at least one row). *)
val fill_statements : config -> Engine.Session.t -> Sqlast.Ast.stmt list

(** One INSERT of 1–3 random rows into the table; rows occasionally clone
    (and slightly mutate) an existing row so near-duplicates occur. *)
val insert_stmt :
  ?existing_rows:Sqlval.Value.t array list ->
  config ->
  Schema_info.table_info ->
  Sqlast.Ast.stmt

(** One more random statement group (usually a single statement; BEGIN ...
    COMMIT pairs arrive as a group), chosen from the current schema. *)
val random_statements : config -> Engine.Session.t -> Sqlast.Ast.stmt list
