(** Multi-domain campaign orchestrator.

    PQS runs "one worker thread per database" for months (paper
    Section 3.4).  A campaign makes that shape first-class: a seed range
    [\[seed_lo, seed_hi)] is sharded across N OCaml domains, each seed is
    one complete {!Runner.run_round} — its own [Engine.Session], its own
    database, its own deterministic RNG — and the per-seed results are
    merged with {!Stats.merge} in ascending seed order.  Because every
    round depends only on [(config, seed)], an N-domain campaign reports
    the *identical* bug set and merged statistics as a sequential run over
    the same seeds; only wall time differs.

    Observability: each seed yields a {!outcome} with its wall time, an
    optional JSONL event trace records one line per seed plus a campaign
    summary, and per-worker coverage instruments are merged into the
    config's instrument after the join. *)

type outcome = {
  seed : int;  (** the database seed of this round *)
  worker : int;  (** which domain executed it *)
  round : Stats.t;  (** the round's statistics (≤ 1 report) *)
  started : float;
      (** monotonic seconds from campaign start when the round began *)
  wall : float;  (** seconds spent on this round *)
}

type t = {
  stats : Stats.t;
      (** deterministic merge of all rounds, ascending seed order *)
  outcomes : outcome list;  (** ascending seed order *)
  domains : int;
  elapsed : float;  (** campaign wall time, seconds *)
  dialect : Sqlval.Dialect.t;
      (** the campaign's dialect — fixes the frontier universe the summary
          line and exported gauges are measured against *)
}

(** Merged bug reports, ascending seed order. *)
val reports : t -> Bug_report.t list

(** Merged statements per second of campaign wall time. *)
val statements_per_sec : t -> float

(** Run the campaign.

    @param domains
      worker count; defaults to [Domain.recommended_domain_count ()].
      [domains:1] runs inline without spawning.
    @param trace
      write a JSONL event trace to this path: one
      [{"type":"seed",...}] object per round (seed, worker, statements,
      queries, pivots, reports, wall_ms) and a final
      [{"type":"campaign",...}] summary.  Seed lines stream out (and
      flush) as rounds complete, so an interrupted campaign leaves a
      usable prefix terminated by a [{"type":"campaign_partial",...}]
      line instead of the summary.
    @param chrome_trace
      additionally write a Chrome trace-event ([chrome://tracing] /
      Perfetto) JSON file with one complete event per seed on its
      worker's timeline.
    @param frontier_json
      write a {!Frontier.to_json} snapshot of the merged frontier
      (measured against the dialect's {!Gen_bias.universe}) to this path,
      cross-linking the repro bundles the campaign wrote.
    @param metrics_every
      with [metrics_path]: re-export a metrics snapshot at least this
      many seconds apart while the campaign runs, through an atomic
      rename ({!Telemetry.write_atomic}) so a Prometheus scraper never
      reads a partial file.  Mid-run snapshots carry the merged counter
      and frontier-gauge projection of the completed rounds (worker
      registries are single-owner, so phase histograms appear only in
      the final export written when the campaign ends).
    @param metrics_path
      target of the periodic export: Prometheus text format, or a JSON
      snapshot when the path ends in [.json]
    @param seed_lo inclusive start of the seed range
    @param seed_hi exclusive end of the seed range

    Seed lines carry the round's frontier point names ([points]) and the
    firing oracle token ([oracle], present only on reporting rounds) —
    what [sqlancer top] tails for the live funnel.

    All duration measurements use the monotonic {!Telemetry.Clock}.  When
    [config]'s telemetry registry is enabled, each worker records into a
    private registry (merged into the config's after the join, like
    coverage), adding [pqs_round_seconds] / [pqs_rounds_total] per seed
    and the [pqs_campaign_domains] / [pqs_campaign_seeds] gauges; after
    the join the campaign also exports the per-dialect
    [pqs_frontier_points_hit] / [pqs_frontier_fraction] gauges and the
    [pqs_frontier_first_hit_seconds] time-to-first-hit histogram labeled
    by point group ([shape]/[expr]/[plan]).

    With [Runner.Config.guided] each worker threads its own bias frontier
    through its shard's rounds, so guided results depend on the shard
    assignment (unlike blind campaigns, which stay domain-count
    independent).

    [Config.seed] is ignored — the range provides the seeds. *)
val run :
  ?domains:int ->
  ?trace:string ->
  ?chrome_trace:string ->
  ?frontier_json:string ->
  ?metrics_every:float ->
  ?metrics_path:string ->
  seed_lo:int ->
  seed_hi:int ->
  Runner.config ->
  t

(** Write the JSONL trace of a finished campaign. *)
val write_trace : t -> string -> unit

(** Write the Chrome trace-event file of a finished campaign. *)
val write_chrome_trace : t -> string -> unit
