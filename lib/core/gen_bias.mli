(** Coverage-guided generation: query-shape fingerprints and frontier-
    directed shape planning.

    The frontier ({!Frontier}) is a vocabulary-agnostic point set; this
    module owns the vocabulary.  Three point groups:

    - [shape.*] — clause-combination fingerprints of a synthesized SELECT:
      join shape (single table / comma cross product / INNER / LEFT),
      derived-table wrapping, WHERE conjunct arity (capped at 3), and the
      DISTINCT / ORDER BY / GROUP BY flags.  One point per query.
    - [expr.*] — the expression-kind multiset of the query's WHERE, JOIN
      and target expressions (comparison, LIKE, BETWEEN, CASE, ...).  One
      point per occurrence, so frontier hit counts are the multiset.
    - [plan.*] — planner access paths, taken from the engine's
      [Engine.Coverage] instrument ([plan.full_scan] ... [plan.or_union]).

    {!universe} enumerates the points reachable for a dialect — the
    denominator of the frontier fraction and the candidate set guided
    generation aims at.  {!plan} inverts a cold [shape.*] point back into
    a {!shape} that [Gen_query.synthesize ~shape] steers generation
    toward, and picks a cold [expr.*] kind for one WHERE conjunct. *)

open Sqlval

(** Desired query shape, decoded from a [shape.*] frontier point. *)
type shape = {
  sh_tables : int;  (** pivot sources the shape wants (1 or 2) *)
  sh_join : [ `Single | `Cross | `Inner | `Left ];
  sh_sub : bool;  (** wrap pivot tables as derived tables *)
  sh_where : int;  (** WHERE conjunct count, 1–3 *)
  sh_distinct : bool;
  sh_order : bool;
  sh_group : bool;
  sh_pred : string option;
      (** cold expression kind (an [expr.*] token without the prefix) to
          aim the first WHERE conjunct at; [None] leaves it random *)
}

(** The [shape.*] point of a shape (ignores [sh_pred]). *)
val point_of_shape : shape -> string

(** Decode a [shape.*] point; [None] on malformed input. *)
val shape_of_point : string -> shape option

(** The clause-combination and expression-kind points of one synthesized
    SELECT: exactly one [shape.*] point (first) plus one [expr.*] point
    per expression-node occurrence. *)
val fingerprint : Sqlast.Ast.select -> string list

(** Every frontier point reachable for the dialect, in stable display
    order: [shape.*] combinations first, then [expr.*] kinds, then
    [plan.*] paths. *)
val universe : Dialect.t -> string list

(** The [plan.*] subset of {!universe} (what the runner snapshots from
    the coverage instrument). *)
val plan_points : Dialect.t -> string list

(** One of the coldest WHERE-targetable [expr.*] kinds of the dialect
    (uniform among ties; aggregates excluded — they cannot appear in a
    WHERE conjunct).  Applied from the first round: the kind vocabulary
    warms within a few rounds, so rotating the first conjunct through the
    least-exercised kinds has none of the cold-start pathology of shape
    guidance. *)
val cold_pred : rng:Rng.t -> dialect:Dialect.t -> Frontier.t -> string option

(** Pick a generation target: a shape decoded from one of the coldest
    [shape.*] points of the dialect's universe (uniform among the ties)
    with [sh_pred] set to {!cold_pred}.  Shape guidance ramps up with
    frontier warmth — against a mostly cold frontier it returns [None]
    (sample blind) almost always, since uniform cold-picking would hunt
    worse than the tuned blind distribution. *)
val plan : rng:Rng.t -> dialect:Dialect.t -> Frontier.t -> shape option
