(** Replay harness: re-run a repro bundle and confirm its verdict.

    [repro.sql] scripts written by the flight recorder ({!Trace.Bundle})
    are self-describing — a [-- key: value] header names the dialect, the
    seed, the oracle token and the enabled injected bugs, and the rest is
    plain SQL.  {!check_file} parses the header, re-runs the script under
    the same bug set and re-checks the oracle verdict with
    {!Reducer.manifestation_check}. *)

type outcome = {
  path : string;
  oracle : Bug_report.oracle;
  recheckable : bool;
      (** [false] for metamorphic/lint bundles, whose verdicts cannot be
          re-derived from the statement list alone (they count as
          reproduced) *)
  reproduced : bool;
  detail : string;
}

(** Replay one [repro.sql].  [Error] means the bundle itself is broken
    (unreadable, bad header, unparsable SQL) — distinct from a readable
    bundle whose verdict does not reproduce ([Ok] with
    [reproduced = false]). *)
val check_file : string -> (outcome, string) result
