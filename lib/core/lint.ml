(* The static-analysis self-check oracle.

   Bridges lib/analysis to the PQS loop: builds Analysis environments from
   the live session's catalog (the same Schema_info snapshot the
   generators use), typechecks every containment query, and — when no
   injected bug is enabled — lints the access path the planner would pick
   for each single-table scan in it.  Any error diagnostic becomes a
   [Bug_report.Lint] report.

   Design constraints that keep the oracle campaign-neutral (a run with
   the lint oracle must report the identical bug set as one without it on
   the same seeds):

   - only [Select_stmt] / [Explain] statements are analyzed, and only when
     they executed successfully: generated DDL/DML may legitimately fail
     (dropped tables, duplicate keys) and those expected errors must keep
     flowing to the error oracle untouched;
   - plan linting is gated on an empty bug set: with injected planner
     bugs enabled the planner intentionally produces inconsistent paths,
     and flagging them would change which report fires first;
   - the oracle is appended after [Oracle.defaults], so on any event the
     paper's oracles keep report priority. *)

open Sqlval
module A = Sqlast.Ast

(* ------------------------------------------------------------------ *)
(* Environment builders                                               *)

let table_of_info (ti : Schema_info.table_info) : Analysis.Typecheck.table =
  {
    Analysis.Typecheck.tab_name = ti.Schema_info.ti_name;
    tab_columns =
      List.map
        (fun (ci : Schema_info.column_info) ->
          {
            Analysis.Typecheck.col_name = ci.Schema_info.ci_name;
            col_type = ci.Schema_info.ci_type;
            col_collation = ci.Schema_info.ci_collation;
            col_nullability =
              (if ci.Schema_info.ci_not_null then
                 Analysis.Nullability.Not_null
               else Analysis.Nullability.Maybe_null);
          })
        ti.Schema_info.ti_columns;
  }

let env_of_session session : Analysis.env =
  let tables =
    Schema_info.tables_of_session session |> List.map table_of_info
  in
  (* views contribute untyped, binary-collation columns, mirroring how
     view rows re-enter the engine *)
  let views =
    Schema_info.views_of_session session
    |> List.map (fun (name, cols) ->
           {
             Analysis.Typecheck.tab_name = name;
             tab_columns =
               List.map
                 (fun c ->
                   {
                     Analysis.Typecheck.col_name = c;
                     col_type = Datatype.Any;
                     col_collation = Collation.Binary;
                     col_nullability = Analysis.Nullability.Maybe_null;
                   })
                 cols;
           })
  in
  Analysis.env (Engine.Session.dialect session) (tables @ views)

let env_of_pivot dialect (pivot : (Schema_info.table_info * Value.t array) list)
    : Analysis.env =
  let tables =
    List.map
      (fun ((ti : Schema_info.table_info), row) ->
        {
          Analysis.Typecheck.tab_name = ti.Schema_info.ti_name;
          tab_columns =
            List.mapi
              (fun i (ci : Schema_info.column_info) ->
                let v =
                  if i < Array.length row then row.(i) else Value.Null
                in
                {
                  Analysis.Typecheck.col_name = ci.Schema_info.ci_name;
                  col_type = ci.Schema_info.ci_type;
                  col_collation = ci.Schema_info.ci_collation;
                  col_nullability = Analysis.Nullability.of_value v;
                })
              ti.Schema_info.ti_columns;
        })
      pivot
  in
  Analysis.env dialect tables

(* ------------------------------------------------------------------ *)
(* Statement and plan analysis                                        *)

let check_stmt session stmt = Analysis.check_stmt (env_of_session session) stmt

(* Single-table scans inside the query (including derived tables and
   compound arms), each paired with its WHERE clause — exactly the shapes
   the planner handles (Explain.from_lines mirrors the same walk). *)
let rec scan_sites session (q : A.query) acc =
  match q with
  | A.Q_values _ -> acc
  | A.Q_compound (_, a, b) -> scan_sites session b (scan_sites session a acc)
  | A.Q_select s ->
      let acc =
        List.fold_left
          (fun acc it -> sub_sites session it acc)
          acc s.A.sel_from
      in
      (match s.A.sel_from with
      | [ A.F_table { name; _ } ] -> (
          let catalog = Engine.Session.catalog session in
          match Storage.Catalog.find_table catalog name with
          | Some ts ->
              (ts.Storage.Catalog.schema, s.A.sel_where) :: acc
          | None -> acc)
      | _ -> acc)

and sub_sites session (it : A.from_item) acc =
  match it with
  | A.F_table _ -> acc
  | A.F_join { left; right; _ } ->
      sub_sites session right (sub_sites session left acc)
  | A.F_sub { sub; _ } -> scan_sites session sub acc

let lint_plans session (q : A.query) : Analysis.Diagnostic.t list =
  let ctx = Engine.Session.ctx session in
  let env = Engine.Executor.eval_env ctx in
  let catalog = Engine.Session.catalog session in
  scan_sites session q []
  |> List.concat_map (fun (schema, where) ->
         let path = Engine.Planner.choose env catalog schema ~where in
         Analysis.lint_plan env catalog schema ~where path)

(* ------------------------------------------------------------------ *)
(* The oracle                                                         *)

let verdict_of diags =
  match List.filter Analysis.Diagnostic.is_error diags with
  | [] -> Oracle.Pass
  | errs ->
      Oracle.Report
        {
          kind = Bug_report.Lint;
          message =
            "static analysis: "
            ^ String.concat "; "
                (List.map Analysis.Diagnostic.to_string errs);
        }

let analyze ctx (stmt : A.stmt) =
  let session = ctx.Oracle.ctx_session in
  match stmt with
  | A.Select_stmt q | A.Explain q | A.Explain_analyze q ->
      Telemetry.Span.timed ctx.Oracle.ctx_telemetry Telemetry.Phase.Lint (fun () ->
          let tdiags = check_stmt session stmt in
          let pdiags =
            (* with injected bugs enabled the planner intentionally produces
               inconsistent paths; lint them only on a clean engine *)
            if Engine.Bug.to_list (Engine.Session.bugs session) = [] then
              lint_plans session q
            else []
          in
          verdict_of (tdiags @ pdiags))
  | _ -> Oracle.Pass

let oracle : Oracle.t =
  Oracle.make ~name:"lint" (fun ctx event ->
      match event with
      | Oracle.Statement (stmt, Oracle.Succeeded _) -> analyze ctx stmt
      | Oracle.Containment_check { Oracle.check_stmt = stmt; _ } ->
          analyze ctx stmt
      | Oracle.Statement (_, (Oracle.Failed _ | Oracle.Crashed _))
      | Oracle.Database_ready ->
          Oracle.Pass)

(* ------------------------------------------------------------------ *)
(* Seed-corpus sweep (make lint / sqlancer lint / test_analysis)       *)

type sweep_result = {
  sw_seeds : int;
  sw_queries : int;  (** containment statements analyzed *)
  sw_plans : int;  (** single-table scan sites linted *)
  sw_diags : (int * Analysis.Diagnostic.t) list;
      (** every type/nullability/plan diagnostic, tagged with its seed *)
  sw_simplify_diags : (int * Analysis.Diagnostic.t) list;
      (** simplification/interval findings (always-true, dead-case-branch,
          unsat-predicate, out-of-interval) — advisory warnings about the
          generated predicates, counted separately from [sw_diags] *)
}

(* Every WHERE clause in the query, including derived tables and compound
   arms — the inputs of the interval and simplification lints. *)
let rec where_sites (q : A.query) acc =
  match q with
  | A.Q_values _ -> acc
  | A.Q_compound (_, a, b) -> where_sites b (where_sites a acc)
  | A.Q_select s ->
      let acc =
        List.fold_left (fun acc it -> where_subs it acc) acc s.A.sel_from
      in
      (match s.A.sel_where with Some w -> w :: acc | None -> acc)

and where_subs (it : A.from_item) acc =
  match it with
  | A.F_table _ -> acc
  | A.F_join { left; right; _ } -> where_subs right (where_subs left acc)
  | A.F_sub { sub; _ } -> where_sites sub acc

let sweep ?(queries_per_seed = 3) ~seed_lo ~seed_hi dialect : sweep_result =
  let seeds = ref 0 and queries = ref 0 and plans = ref 0 in
  let diags = ref [] and simplify_diags = ref [] in
  for seed = seed_lo to seed_hi do
    incr seeds;
    let rng = Rng.make ~seed in
    let session =
      Engine.Session.create ~seed ~bugs:Engine.Bug.empty_set dialect
    in
    let gen_cfg =
      Gen_db.Config.(
        make dialect |> with_rng rng |> with_max_rows 5
        |> with_extra_statements 4)
    in
    let exec stmt =
      match Engine.Session.execute session stmt with
      | Ok _ | Error _ -> ()
      | exception Engine.Errors.Crash _ -> ()
    in
    List.iter exec (Gen_db.initial_statements gen_cfg);
    Schema_info.tables_of_session session
    |> List.iter (fun (ti : Schema_info.table_info) ->
           for _ = 1 to 2 do
             exec
               (Gen_db.insert_stmt
                  ~existing_rows:
                    (Schema_info.rows_of_table session ti.Schema_info.ti_name)
                  gen_cfg ti)
           done);
    List.iter exec (Gen_db.random_statements gen_cfg session);
    List.iter exec (Gen_db.fill_statements gen_cfg session);
    let sources =
      Schema_info.tables_of_session session
      |> List.filter_map (fun (ti : Schema_info.table_info) ->
             match
               Schema_info.rows_of_table session ti.Schema_info.ti_name
             with
             | [] -> None
             | rows -> Some (ti, rows))
    in
    if sources <> [] then begin
      let csl =
        Engine.Options.case_sensitive_like (Engine.Session.options session)
      in
      (* interval domains over the declared schema and a column-free
         folding environment: the simplification lints need no pivot *)
      let idom =
        Analysis.Interval.of_tables dialect
          (Schema_info.tables_of_session session |> List.map table_of_info)
      in
      let cenv = Analysis.Const_fold.const_env ~case_sensitive_like:csl dialect in
      for _ = 1 to queries_per_seed do
        let chosen =
          let k = if List.length sources >= 2 && Rng.bool rng then 2 else 1 in
          Rng.sample rng k sources
        in
        let pivot =
          List.map
            (fun ((ti : Schema_info.table_info), rows) ->
              (ti, Rng.pick rng rows))
            chosen
        in
        let rec attempt tries =
          if tries <= 0 then None
          else
            match
              Gen_query.synthesize ~rng ~dialect ~pivot
                ~case_sensitive_like:csl ~max_depth:4 ~check_expressions:true
                ()
            with
            | Ok t -> Some t
            | Error _ -> attempt (tries - 1)
        in
        match attempt 5 with
        | None -> ()
        | Some t ->
            let stmt = Gen_query.containment_stmt t in
            incr queries;
            let tdiags = check_stmt session stmt in
            let pdiags =
              match stmt with
              | A.Select_stmt q | A.Explain q | A.Explain_analyze q ->
                  plans := !plans + List.length (scan_sites session q []);
                  lint_plans session q
              | _ -> []
            in
            List.iter
              (fun d -> diags := (seed, d) :: !diags)
              (tdiags @ pdiags);
            (match stmt with
            | A.Select_stmt q | A.Explain q | A.Explain_analyze q ->
                List.iter
                  (fun w ->
                    List.iter
                      (fun d -> simplify_diags := (seed, d) :: !simplify_diags)
                      (Analysis.Interval.check idom w
                      @ Analysis.Simplify.where_diagnostics cenv w))
                  (where_sites q [])
            | _ -> ())
      done
    end
  done;
  {
    sw_seeds = !seeds;
    sw_queries = !queries;
    sw_plans = !plans;
    sw_diags = List.rev !diags;
    sw_simplify_diags = List.rev !simplify_diags;
  }

(* self-registration: the CLI flag, reducer and replay arms all derive
   from this entry *)
let () =
  Oracle.Registry.register
    {
      Oracle.Registry.reg_name = "lint";
      reg_doc = "add the static-analysis self-check oracle (see Analysis)";
      reg_flag = Some "lint";
      reg_default = false;
      reg_kinds = [ Bug_report.Lint ];
      reg_make = (fun () -> oracle);
      (* static-analysis findings depend on schema state at analysis time,
         not on replay behaviour *)
      reg_recheck = Oracle.Registry.Not_recheckable;
    }
