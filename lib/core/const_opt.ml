(* The constant-optimization (CODDTest-style) oracle.

   PQS already knows a ground-truth satisfying assignment for every
   positive containment check: the pivot row.  This oracle folds that
   assignment into the query as constants — every column reference the
   simplifier can prove constant becomes a literal, constant subtrees are
   folded through the engine evaluator, and tautological conjuncts / dead
   CASE branches are pruned ({!Analysis.Simplify}) — and re-executes the
   containment query with the simplified WHERE clause.

   The simplified predicate agrees with the original on the pivot row by
   the simplifier's soundness contract, and a positive check's pivot row
   satisfies the original (rectified-to-TRUE) predicate, so on a correct
   engine the simplified containment query must still contain the pivot
   row.  An empty result is a bug by construction: the engine evaluated
   the constant-laden variant differently from the column-laden one —
   precisely the defect class of a broken constant folder (NULL
   propagation through AND/NOT, affinity decisions re-derived from
   literal storage classes, ...).

   Eligibility mirrors the soundness argument: positive checks only, the
   pivot row must have been found, and the inner select must have no
   aggregation / GROUP BY / HAVING / LIMIT / OFFSET — under those the
   result rows are not a per-row function of the predicate, so weakening
   or strengthening it away from the pivot row legitimately changes the
   output.

   Campaign neutrality mirrors lint and plan-diff: the re-execution goes
   through {!Engine.Session.query_forced} (no statement counting, no
   coverage hits, no randomness) and the oracle is appended after
   [Oracle.defaults], so the paper's oracles keep report priority. *)

open Sqlval
module A = Sqlast.Ast
module Simplify = Analysis.Simplify
module Const_fold = Analysis.Const_fold

(* ------------------------------------------------------------------ *)
(* Pivot bindings                                                      *)

let bindings_of_pivot (pivot : (Schema_info.table_info * Value.t array) list)
    : Const_fold.binding list =
  List.concat_map
    (fun ((ti : Schema_info.table_info), row) ->
      List.mapi
        (fun i (ci : Schema_info.column_info) ->
          {
            Const_fold.b_table = ti.Schema_info.ti_name;
            b_column = ci.Schema_info.ci_name;
            b_value =
              (if i < Array.length row then row.(i) else Value.Null);
            b_type = ci.Schema_info.ci_type;
            b_collation = ci.Schema_info.ci_collation;
          })
        ti.Schema_info.ti_columns)
    pivot

(* ------------------------------------------------------------------ *)
(* Eligibility and the simplified variant                              *)

(* Derived tables drop column metadata: the executor materializes an
   [F_sub] with untyped, binary-collated output columns, while the pivot
   bindings carry the declared base-table type and collation.  Folding
   with the declared metadata would disagree with the engine on e.g.
   affinity conversions, so such checks are ineligible.  Plain table
   references (and joins of them) resolve to the same metadata the
   bindings carry — views included, since their pivot pseudo-info is
   already untyped and binary-collated, matching the expansion. *)
let rec metadata_transparent = function
  | A.F_table _ -> true
  | A.F_join { left; right; _ } ->
      metadata_transparent left && metadata_transparent right
  | A.F_sub _ -> false

let select_eligible (s : A.select) =
  List.for_all metadata_transparent s.A.sel_from
  && s.A.sel_group_by = []
  && s.A.sel_having = None
  && s.A.sel_limit = None
  && s.A.sel_offset = None
  && not
       (List.exists
          (function
            | A.Sel_expr (e, _) -> A.has_agg e
            | A.Star | A.Table_star _ -> false)
          s.A.sel_items)

(* The simplified containment query, with the simplifier's provenance.
   [None] when the check is ineligible or no rewrite applied (running an
   identical query carries no signal). *)
let simplified_stmt session
    ~(pivot : (Schema_info.table_info * Value.t array) list) (q : A.query) :
    (A.query * Simplify.result) option =
  match q with
  | A.Q_compound (A.Intersect, (A.Q_values _ as values), A.Q_select sel)
    when pivot <> [] && select_eligible sel -> (
      match sel.A.sel_where with
      | None -> None
      | Some w ->
          let env =
            Const_fold.env
              ~case_sensitive_like:
                (Engine.Options.case_sensitive_like
                   (Engine.Session.options session))
              (Engine.Session.dialect session)
              (bindings_of_pivot pivot)
          in
          let r = Simplify.simplify env w in
          if A.equal_expr r.Simplify.res_expr w then None
          else
            Some
              ( A.Q_compound
                  ( A.Intersect,
                    values,
                    A.Q_select { sel with A.sel_where = Some r.Simplify.res_expr }
                  ),
                r ))
  | _ -> None

let trail_string (r : Simplify.result) =
  String.concat "; "
    (List.map
       (fun (rw : Simplify.rewrite) ->
         Printf.sprintf "%s@%s: %s => %s" rw.Simplify.rw_rule
           rw.Simplify.rw_loc rw.Simplify.rw_before rw.Simplify.rw_after)
       r.Simplify.res_trail)

let message session (q' : A.query) (r : Simplify.result) =
  Printf.sprintf
    "constant-optimization divergence: the containment query contained \
     the pivot row, but after folding the pivot values in as constants \
     the simplified query `%s` returned no rows; rewrites applied: %s"
    (Sqlast.Sql_printer.query (Engine.Session.dialect session) q')
    (trail_string r)

(* run the simplified variant outside the campaign's accounting *)
let run_quiet session q =
  try
    match
      Engine.Session.query_forced session ~force:Engine.Executor.no_force q
    with
    | Ok rs -> Some rs
    | Error _ -> None
  with Engine.Errors.Crash _ -> None

(* Does the check diverge on this session?  Used by the sweep and the
   reducer recheck; the oracle proper skips the first execution because
   the runner already knows the pivot row was found. *)
let reproduce session ~pivot (q : A.query) : bool =
  match simplified_stmt session ~pivot q with
  | None -> false
  | Some (q', _) -> (
      match (run_quiet session q, run_quiet session q') with
      | Some orig, Some simp ->
          orig.Engine.Executor.rs_rows <> []
          && simp.Engine.Executor.rs_rows = []
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)

(* Deterministic stateless sampling: re-executing every eligible check
   roughly doubles containment-query cost (measured ~56% campaign
   overhead), far past the 15% budget shared with the plan-diff oracle.
   Like plan-diff's [max_plans] fan-out cap, a sampling stride is the
   throughput/coverage knob: only every [sample_every]-th check (chosen
   by a structural hash of the check's query, so the choice is a pure
   function of the check — parallel campaign merges stay bit-identical
   to sequential runs) pays the simplify + re-execute cost.  The pivot
   values sit in the VALUES arm near the root, so repeated probe shapes
   still vary across seeds; the raised node limits make the hash see
   past them into the WHERE clause. *)
let sampled ~sample_every (q : A.query) =
  sample_every <= 1 || Hashtbl.hash_param 64 128 q mod sample_every = 0

let oracle ?(sample_every = 8) () : Oracle.t =
  Oracle.make ~name:"const_opt" (fun ctx event ->
      match event with
      | Oracle.Containment_check
          {
            Oracle.check_stmt = A.Select_stmt q;
            negative = false;
            pivot_found = true;
            check_pivot;
          }
        when sampled ~sample_every q ->
          Telemetry.Span.timed ctx.Oracle.ctx_telemetry
            Telemetry.Phase.Const_opt (fun () ->
              match
                simplified_stmt ctx.Oracle.ctx_session ~pivot:check_pivot q
              with
              | None -> Oracle.Pass
              | Some (q', r) -> (
                  Telemetry.inc ctx.Oracle.ctx_telemetry
                    "pqs_const_checks_total";
                  match run_quiet ctx.Oracle.ctx_session q' with
                  | Some rs when rs.Engine.Executor.rs_rows = [] ->
                      Telemetry.inc ctx.Oracle.ctx_telemetry
                        "pqs_const_divergences_total";
                      Oracle.Report
                        {
                          kind = Bug_report.Const_opt;
                          message = message ctx.Oracle.ctx_session q' r;
                        }
                  | _ -> Oracle.Pass))
      | Oracle.Containment_check _ | Oracle.Statement _ | Oracle.Database_ready
        ->
          Oracle.Pass)

(* ------------------------------------------------------------------ *)
(* Seed-corpus sweep (make constopt / sqlancer const-opt / tests)      *)

type sweep_result = {
  co_seeds : int;
  co_queries : int;  (** positive containment checks attempted *)
  co_checks : int;  (** checks where a rewrite applied and re-ran *)
  co_rewrites : int;  (** total rewrites across all checks *)
  co_divergences : (int * string) list;
      (** every constant-optimization divergence, tagged with its seed *)
}

(* one containment probe: [VALUES (pivot) INTERSECT SELECT * FROM t WHERE w] *)
let containment_probe (ti : Schema_info.table_info) (row : Value.t array)
    (where : A.expr) : A.query =
  A.Q_compound
    ( A.Intersect,
      A.Q_values [ List.map (fun v -> A.Lit v) (Array.to_list row) ],
      A.Q_select
        {
          A.sel_distinct = false;
          sel_items = [ A.Star ];
          sel_from = [ A.F_table { name = ti.Schema_info.ti_name; alias = None } ];
          sel_where = Some where;
          sel_group_by = [];
          sel_having = None;
          sel_order_by = [];
          sel_limit = None;
          sel_offset = None;
        } )

(* Directed probes per pivot source: WHERE shapes whose simplified form
   leaves exactly the operand patterns a broken constant folder
   mishandles — a NULL literal under AND (NULL-propagation folds), a
   mixed-storage-class literal comparison (affinity re-derivation), and a
   NULL literal under NOT inside IS NULL (NOT-NULL folds).  Random
   synthesis reaches these residues too rarely for a bounded sweep. *)
let directed_probes (ti : Schema_info.table_info) (row : Value.t array) :
    A.expr list =
  match ti.Schema_info.ti_columns with
  | [] -> []
  | (c0 : Schema_info.column_info) :: _ ->
      let col0 = A.col c0.Schema_info.ci_name in
      let eq_null = A.Binary (A.Eq, col0, A.Lit Value.Null) in
      let false_cmp =
        A.Binary (A.Eq, A.Lit (Value.Int 1L), A.Lit (Value.Int 2L))
      in
      (* A: NOT ((c0 = NULL) AND (1 = 2)) — simplifies to
         NOT (NULL AND (1 = 2)); correct engines fold to TRUE *)
      let probe_a = A.Unary (A.Not, A.Binary (A.And, eq_null, false_cmp)) in
      (* C: (NOT (c0 = NULL)) IS NULL — simplifies to
         (NOT NULL) IS NULL; correct engines fold to TRUE *)
      let probe_c =
        A.Is
          { negated = false; arg = A.Unary (A.Not, eq_null); rhs = A.Is_null }
      in
      (* B: c > 5 on a text-valued column — substitution leaves a
         text-vs-integer literal comparison (sqlite orders every text
         after every number, so the pivot row satisfies it) *)
      let probe_b =
        List.mapi (fun i c -> (i, c)) ti.Schema_info.ti_columns
        |> List.find_map (fun (i, (c : Schema_info.column_info)) ->
               if i < Array.length row then
                 match row.(i) with
                 | Value.Text _ ->
                     Some
                       (A.Binary
                          ( A.Gt,
                            A.col c.Schema_info.ci_name,
                            A.Lit (Value.Int 5L) ))
                 | _ -> None
               else None)
      in
      (probe_a :: probe_c :: Option.to_list probe_b)

let sweep ?(queries_per_seed = 3) ?(bugs = Engine.Bug.empty_set)
    ?(backend = Engine.Exec_backend.Interpreted) ~seed_lo ~seed_hi dialect :
    sweep_result =
  let seeds = ref 0 and queries = ref 0 in
  let checks = ref 0 and rewrites = ref 0 in
  let divergences = ref [] in
  for seed = seed_lo to seed_hi do
    incr seeds;
    let rng = Rng.make ~seed in
    let session = Engine.Session.create ~seed ~bugs ~backend dialect in
    let gen_cfg =
      Gen_db.Config.(
        make dialect |> with_rng rng |> with_max_rows 5
        |> with_extra_statements 4)
    in
    let exec stmt =
      match Engine.Session.execute session stmt with
      | Ok _ | Error _ -> ()
      | exception Engine.Errors.Crash _ -> ()
    in
    List.iter exec (Gen_db.initial_statements gen_cfg);
    Schema_info.tables_of_session session
    |> List.iter (fun (ti : Schema_info.table_info) ->
           for _ = 1 to 2 do
             exec
               (Gen_db.insert_stmt
                  ~existing_rows:
                    (Schema_info.rows_of_table session ti.Schema_info.ti_name)
                  gen_cfg ti)
           done);
    List.iter exec (Gen_db.random_statements gen_cfg session);
    List.iter exec (Gen_db.fill_statements gen_cfg session);
    let sources =
      Schema_info.tables_of_session session
      |> List.filter_map (fun (ti : Schema_info.table_info) ->
             match
               Schema_info.rows_of_table session ti.Schema_info.ti_name
             with
             | [] -> None
             | rows -> Some (ti, rows))
    in
    (* the one check both the sweep paths share *)
    let consider ~pivot q =
      incr queries;
      match simplified_stmt session ~pivot q with
      | None -> ()
      | Some (q', r) -> (
          match (run_quiet session q, run_quiet session q') with
          | Some orig, Some simp when orig.Engine.Executor.rs_rows <> [] ->
              incr checks;
              rewrites := !rewrites + List.length r.Simplify.res_trail;
              if simp.Engine.Executor.rs_rows = [] then
                divergences :=
                  (seed, message session q' r) :: !divergences
          | _ -> ())
    in
    if sources <> [] then begin
      let csl =
        Engine.Options.case_sensitive_like (Engine.Session.options session)
      in
      for _ = 1 to queries_per_seed do
        let chosen =
          let k = if List.length sources >= 2 && Rng.bool rng then 2 else 1 in
          Rng.sample rng k sources
        in
        let pivot =
          List.map
            (fun ((ti : Schema_info.table_info), rows) ->
              (ti, Rng.pick rng rows))
            chosen
        in
        let rec attempt tries =
          if tries <= 0 then None
          else
            match
              Gen_query.synthesize ~rng ~dialect ~pivot
                ~case_sensitive_like:csl ~max_depth:4 ~check_expressions:true
                ()
            with
            | Ok t -> Some t
            | Error _ -> attempt (tries - 1)
        in
        match attempt 5 with
        | None -> ()
        | Some t -> (
            match Gen_query.containment_stmt t with
            | A.Select_stmt q -> consider ~pivot q
            | _ -> ())
      done;
      (* directed probes, one pivot row per source table *)
      List.iter
        (fun ((ti : Schema_info.table_info), rows) ->
          let row = Rng.pick rng rows in
          List.iter
            (fun where ->
              consider ~pivot:[ (ti, row) ] (containment_probe ti row where))
            (directed_probes ti row))
        sources
    end
  done;
  {
    co_seeds = !seeds;
    co_queries = !queries;
    co_checks = !checks;
    co_rewrites = !rewrites;
    co_divergences = List.rev !divergences;
  }

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)

(* The reducer recheck replays the script, then re-derives the verdict by
   trying every candidate pivot assignment of the final containment
   query's FROM tables (the bundle does not record which row was the
   pivot): reproduced iff some assignment makes the original query
   nonempty and its simplified variant empty. *)
let () =
  let rec from_tables = function
    | A.F_table { name; _ } -> [ name ]
    | A.F_join { left; right; _ } -> from_tables left @ from_tables right
    | A.F_sub _ -> []
  in
  let recheck ~dialect ~bugs ~oracle:_ stmts =
    let session = Engine.Session.create ~bugs dialect in
    (try
       List.iter
         (fun stmt ->
           match Engine.Session.execute session stmt with
           | Ok _ | Error _ -> ())
         stmts
     with Engine.Errors.Crash _ -> ());
    match List.rev stmts with
    | A.Select_stmt
        (A.Q_compound (A.Intersect, A.Q_values _, A.Q_select sel) as q)
      :: _ ->
        let names =
          List.concat_map from_tables sel.A.sel_from
          |> List.map String.lowercase_ascii
        in
        let infos =
          Schema_info.tables_of_session session
          |> List.filter (fun (ti : Schema_info.table_info) ->
                 List.mem
                   (String.lowercase_ascii ti.Schema_info.ti_name)
                   names)
        in
        let candidates =
          List.fold_left
            (fun acc (ti : Schema_info.table_info) ->
              let rows =
                Schema_info.rows_of_table session ti.Schema_info.ti_name
              in
              List.concat_map
                (fun pivot -> List.map (fun r -> (ti, r) :: pivot) rows)
                acc)
            [ [] ] infos
          |> List.map List.rev
        in
        let rec take n = function
          | [] -> []
          | _ when n <= 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        List.exists
          (fun pivot -> reproduce session ~pivot q)
          (take 64 candidates)
    | _ -> false
  in
  Oracle.Registry.register
    {
      Oracle.Registry.reg_name = "const_opt";
      reg_doc =
        "add the constant-optimization (CODDTest) oracle: fold the pivot \
         row's values into each positive containment query as constants, \
         simplify, and require the pivot row to survive";
      reg_flag = Some "const-opt";
      reg_default = false;
      reg_kinds = [ Bug_report.Const_opt ];
      reg_make = (fun () -> oracle ());
      reg_recheck = Oracle.Registry.Custom recheck;
    }
