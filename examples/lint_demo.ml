(* Static analysis demo: typecheck SQL against a schema, watch the 3VL
   nullability lattice at work, and run the self-check sweep that backs
   `make lint`.

     dune exec examples/lint_demo.exe *)

let parse sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok stmt -> stmt
  | Error e -> failwith (Sqlparse.Parser.show_error e)

let parse_expr sql =
  match Sqlparse.Parser.parse_expr sql with
  | Ok e -> e
  | Error e -> failwith (Sqlparse.Parser.show_error e)

let () =
  (* A small postgres-flavoured schema: one typed table. *)
  let open Analysis.Typecheck in
  let t0 =
    {
      tab_name = "t0";
      tab_columns =
        [
          {
            col_name = "c0";
            col_type = Sqlval.Datatype.Int { width = Sqlval.Datatype.Regular; unsigned = false };
            col_collation = Sqlval.Collation.Binary;
            col_nullability = Analysis.Nullability.Maybe_null;
          };
          {
            col_name = "c1";
            col_type = Sqlval.Datatype.Text;
            col_collation = Sqlval.Collation.Nocase;
            col_nullability = Analysis.Nullability.Not_null;
          };
        ];
    }
  in
  let env = Analysis.env Sqlval.Dialect.Postgres_like [ t0 ] in

  (* 1. Ill-typed statements produce structured diagnostics. *)
  print_endline "-- diagnostics on ill-typed SQL (postgres dialect) --";
  List.iter
    (fun sql ->
      Printf.printf "sql> %s\n" sql;
      let diags = Analysis.check_stmt env (parse sql) in
      if diags = [] then print_endline "  (clean)"
      else
        List.iter
          (fun d -> Printf.printf "  %s\n" (Analysis.Diagnostic.to_string d))
          diags)
    [
      "SELECT c0 FROM t0 WHERE c1";
      "SELECT missing FROM t0";
      "SELECT ABS(c0, c1) FROM t0";
      "SELECT c0 FROM t0 WHERE c1 GLOB 'x*'";
      "SELECT MIN(MAX(c0)) FROM t0";
      "SELECT c0 FROM t0 WHERE NULL";
      "SELECT c0, c1 FROM t0 ORDER BY c0";
    ];

  (* 2. Nullability inference: the analyzer proves where NULL cannot flow. *)
  print_endline "";
  print_endline "-- 3VL nullability inference --";
  List.iter
    (fun sql ->
      let t, _ = Analysis.check_expr env (parse_expr sql) in
      Printf.printf "%-34s : %s\n" sql
        (Analysis.Nullability.to_string t.Analysis.Typecheck.ty_nullability))
    [
      "c1 = 'abc'";
      "c0 + 1";
      "c0 IS NULL";
      "NULL + c0";
      "COALESCE(c0, 0)";
      "CASE WHEN c1 = 'x' THEN 1 END";
    ];

  (* 3. The self-check sweep: generated queries must be diagnostic-free. *)
  print_endline "";
  print_endline "-- generator self-check sweep (30 seeds per dialect) --";
  List.iter
    (fun dialect ->
      let r = Pqs.Lint.sweep ~seed_lo:1 ~seed_hi:30 dialect in
      Printf.printf "%-9s seeds=%d queries=%d plans=%d diagnostics=%d\n"
        (Sqlval.Dialect.name dialect)
        r.Pqs.Lint.sw_seeds r.Pqs.Lint.sw_queries r.Pqs.Lint.sw_plans
        (List.length r.Pqs.Lint.sw_diags))
    [
      Sqlval.Dialect.Sqlite_like;
      Sqlval.Dialect.Mysql_like;
      Sqlval.Dialect.Postgres_like;
    ]
