(* Bug hunt: enable the paper's Listing 1 defect (a partial-index planner
   bug), let PQS find it, and print the automatically reduced reproduction
   script — the whole workflow of the paper in a few lines of API.

     dune exec examples/bug_hunt.exe *)

let () =
  let bug = Engine.Bug.Sq_partial_index_implies_not_null in
  let info = Engine.Bug.info bug in
  Printf.printf "target defect : %s\n" (Engine.Bug.show bug);
  Printf.printf "models        : paper %s\n" info.Engine.Bug.paper_ref;
  Printf.printf "summary       : %s\n\n" info.Engine.Bug.summary;
  let bugs = Engine.Bug.set_of_list [ bug ] in
  let config = Pqs.Runner.Config.make ~seed:7 ~bugs info.Engine.Bug.dialect in
  Printf.printf "hunting (up to 20000 containment checks)...\n%!";
  match Pqs.Runner.hunt config ~max_queries:20000 with
  | None -> print_endline "not found — try another seed"
  | Some report ->
      Printf.printf "found via the %s oracle!\n\n"
        (Pqs.Bug_report.oracle_label report.Pqs.Bug_report.oracle);
      Printf.printf "unreduced reproduction: %d statements\n"
        (List.length report.Pqs.Bug_report.statements);
      let reduced = Pqs.Reducer.reduce_report report ~bugs in
      Printf.printf "after reduction       : %d statements\n\n"
        (Pqs.Bug_report.loc reduced);
      print_endline (Pqs.Bug_report.script reduced);
      (* show the discrepancy: the reduced script's final query returns
         nothing on the buggy engine but fetches the pivot on a correct
         one *)
      let replay enabled =
        let session =
          Engine.Session.create
            ~bugs:(if enabled then bugs else Engine.Bug.empty_set)
            info.Engine.Bug.dialect
        in
        let stmts =
          Option.value ~default:report.Pqs.Bug_report.statements
            reduced.Pqs.Bug_report.reduced
        in
        List.fold_left
          (fun last stmt ->
            match Engine.Session.execute session stmt with
            | Ok (Engine.Session.Rows rs) ->
                Some (List.length rs.Engine.Executor.rs_rows)
            | _ -> last)
          None stmts
      in
      Printf.printf "\nfinal query rows — buggy engine: %s, correct engine: %s\n"
        (match replay true with Some n -> string_of_int n | None -> "?")
        (match replay false with Some n -> string_of_int n | None -> "?")
