(* The Campaign API in a few lines: build an immutable config, pick the
   oracle set, shard a seed range across domains (one database round per
   seed, as the paper's one-worker-per-database prescribes), and read the
   deterministically merged report.  The same range on 1 domain yields the
   identical bug set.

     dune exec examples/campaign_demo.exe *)

let () =
  let dialect = Sqlval.Dialect.Sqlite_like in
  (* every catalog bug of the dialect is live: the campaign should find
     several across the seed range *)
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let config =
    Pqs.Runner.Config.make ~bugs
      ~oracles:(Pqs.Oracle.defaults @ [ Pqs.Oracle.metamorphic () ])
      dialect
  in
  let campaign =
    Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:41
      ~trace:"campaign.jsonl" config
  in
  Printf.printf "%d domains, %.2fs wall, %.0f statements/s\n"
    campaign.Pqs.Campaign.domains campaign.Pqs.Campaign.elapsed
    (Pqs.Campaign.statements_per_sec campaign);
  Printf.printf "%s\n\n" (Pqs.Stats.summary campaign.Pqs.Campaign.stats);
  List.iter
    (fun (r : Pqs.Bug_report.t) ->
      Printf.printf "seed %d [%s] %s\n" r.Pqs.Bug_report.seed
        (Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)
        r.Pqs.Bug_report.message)
    (Pqs.Campaign.reports campaign);
  print_endline "per-seed event trace written to campaign.jsonl"
