(* Observability in a few lines: give the campaign a live metrics
   registry, run a seed range, then read the phase-latency funnel straight
   off the registry and export Prometheus text plus a Chrome trace.
   Enabling telemetry is campaign-neutral — the bug set is identical to a
   run on the noop sink — so instrumentation can stay on during hunts.

     dune exec examples/telemetry_demo.exe *)

let () =
  let dialect = Sqlval.Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let telemetry = Telemetry.create () in
  let config = Pqs.Runner.Config.make ~bugs ~telemetry dialect in
  let campaign =
    Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:41
      ~chrome_trace:"campaign_trace.json" config
  in
  Printf.printf "%d seeds, %.2fs wall, %d reports\n\n" 40
    campaign.Pqs.Campaign.elapsed
    (List.length (Pqs.Campaign.reports campaign));

  (* the per-phase latency funnel, read directly off the merged registry:
     every worker recorded into its own registry, joined like coverage *)
  Printf.printf "%-12s %8s %12s %12s\n" "phase" "count" "p50" "p99";
  List.iter
    (fun p ->
      let metric = Telemetry.Phase.metric p in
      let labels = [ ("phase", Telemetry.Phase.name p) ] in
      let count = Telemetry.histogram_count telemetry ~labels metric in
      if count > 0 then
        let q pr =
          match Telemetry.quantile telemetry ~labels metric pr with
          | Some s -> Printf.sprintf "%.0fus" (1e6 *. s)
          | None -> "-"
        in
        Printf.printf "%-12s %8d %12s %12s\n" (Telemetry.Phase.name p) count
          (q 0.5) (q 0.99))
    Telemetry.Phase.all;

  Printf.printf "\nrounds: %d  statements: %d  pivots: %d\n"
    (Telemetry.counter_value telemetry "pqs_rounds_total")
    (Telemetry.counter_value telemetry "pqs_statements_total")
    (Telemetry.counter_value telemetry "pqs_pivots_total");

  (* exporters: Prometheus text by default, JSON for a .json suffix *)
  Telemetry.write_file telemetry "campaign_metrics.prom";
  print_endline "metrics written to campaign_metrics.prom";
  print_endline "per-seed spans written to campaign_trace.json (chrome://tracing)"
