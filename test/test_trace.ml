(* The flight recorder's contracts:

   - ring buffer: pre-sized at creation, O(1) recording, oldest-first
     eviction with an exact dropped count, [begin_round] resets, and the
     noop sink is inert;
   - trace.json: the export parses (with the same from-scratch JSON
     parser test_telemetry uses) and carries the round metadata plus one
     typed object per surviving event;
   - bundles: the repro script's self-describing header round-trips
     through [parse_script_text], [write] produces all three files, and
     reducer minimization rewrites the script in place keeping the
     header plus a [-- reduced: true] marker;
   - campaign integration: every oracle finding in a bundle-enabled
     campaign carries a bundle whose repro.sql replays to the same
     verdict ([Replay.check_file]), and enabling tracing + bundles is
     campaign-neutral (identical report sets);
   - --trace-sample: healthy rounds dump full traces on the sampling
     period;
   - EXPLAIN ANALYZE: per-operator annotations (rows in/out, wall time)
     render as plan lines ending in a RESULT summary;
   - provenance: the per-condition (raw, verdict, rectified) triples the
     generator exposes agree with its [raw_truths]. *)

open Sqlval

(* ---------- a minimal JSON parser (no yojson in this environment) ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (code land 0x7f));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Jarr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Jarr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Jobj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad_json ("missing member " ^ name)))
  | _ -> raise (Bad_json "not an object")

let jstr = function Jstr s -> s | _ -> raise (Bad_json "not a string")
let jarr = function Jarr l -> l | _ -> raise (Bad_json "not an array")
let jnum = function Jnum f -> f | _ -> raise (Bad_json "not a number")

(* ---------- small helpers ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains_sub sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

(* a fresh empty directory under the system temp dir *)
let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Trace.mkdir_p path;
  path

let parse_sql sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok s -> s
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e)

let exec session sql =
  match Engine.Session.execute session (parse_sql sql) with
  | Ok r -> r
  | Error e -> Alcotest.fail (Engine.Errors.show e)

(* ---------- ring buffer laws ---------- *)

let test_eviction () =
  let r = Trace.create ~capacity:4 () in
  Alcotest.(check bool) "enabled" true (Trace.enabled r);
  Alcotest.(check int) "capacity as requested" 4 (Trace.capacity r);
  for i = 0 to 9 do
    Trace.note r (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "length is bounded by capacity" 4 (Trace.length r);
  Alcotest.(check int) "dropped counts evictions exactly" 6 (Trace.dropped r);
  let notes =
    List.map
      (fun (e : Trace.entry) ->
        match e.Trace.event with
        | Trace.Event.Note s -> s
        | _ -> Alcotest.fail "expected note")
      (Trace.events r)
  in
  Alcotest.(check (list string)) "survivors are the newest, oldest-first"
    [ "e6"; "e7"; "e8"; "e9" ] notes;
  let ts = List.map (fun (e : Trace.entry) -> e.Trace.ts_ns) (Trace.events r) in
  Alcotest.(check bool) "timestamps are non-decreasing" true
    (List.sort compare ts = ts);
  (* capacity is clamped to at least one slot *)
  Alcotest.(check int) "capacity clamps to 1" 1
    (Trace.capacity (Trace.create ~capacity:0 ()))

let test_begin_round () =
  let r = Trace.create ~capacity:2 () in
  Trace.note r "a";
  Trace.note r "b";
  Trace.note r "c";
  Alcotest.(check int) "pre-reset dropped" 1 (Trace.dropped r);
  Trace.begin_round r ~seed:42 ~dialect:Dialect.Mysql_like;
  Alcotest.(check int) "reset clears entries" 0 (Trace.length r);
  Alcotest.(check int) "reset zeroes dropped" 0 (Trace.dropped r);
  Alcotest.(check int) "seed stamped" 42 (Trace.seed r);
  Alcotest.(check bool) "dialect stamped" true
    (Trace.dialect r = Dialect.Mysql_like);
  Trace.note r "d";
  Alcotest.(check int) "recording resumes" 1 (Trace.length r)

let test_noop () =
  let r = Trace.noop in
  Alcotest.(check bool) "noop is disabled" false (Trace.enabled r);
  Trace.begin_round r ~seed:7 ~dialect:Dialect.Sqlite_like;
  Trace.note r "ignored";
  Trace.record r
    (Trace.Event.Oracle_fired
       { oracle = "containment"; message = "x"; phase = "containment" });
  Alcotest.(check int) "noop stays empty" 0 (Trace.length r);
  Alcotest.(check int) "noop drops nothing" 0 (Trace.dropped r);
  Alcotest.(check (list reject)) "noop has no events" [] (Trace.events r)

(* ---------- trace.json ---------- *)

let test_trace_json () =
  let r = Trace.create ~capacity:8 () in
  Trace.begin_round r ~seed:99 ~dialect:Dialect.Sqlite_like;
  Trace.record r
    (Trace.Event.Statement
       {
         stmt = parse_sql "SELECT 1";
         outcome = Trace.Event.Rows 1;
         dur_ns = 1234;
       });
  Trace.record r
    (Trace.Event.Statement
       {
         stmt = parse_sql "DROP TABLE missing";
         outcome = Trace.Event.Error "no such table";
         dur_ns = 5;
       });
  Trace.record r (Trace.Event.Pivot { source = "t0"; row = [ "1"; "'a'" ] });
  Trace.record r (Trace.Event.Plan { table = "t0"; path = "full-scan" });
  Trace.record r
    (Trace.Event.Op
       {
         op = "SCAN";
         detail = "t0 USING full-scan";
         rows_in = 3;
         rows_out = 2;
         batches = 1;
         btree_nodes = 1;
         btree_entries = 4;
         dur_ns = 999;
       });
  Trace.record r
    (Trace.Event.Oracle_fired
       { oracle = "containment"; message = "gone"; phase = "containment" });
  let doc = parse_json (Trace.to_json r) in
  Alcotest.(check (float 0.0)) "round seed" 99.0 (jnum (member "round_seed" doc));
  Alcotest.(check string) "dialect" (Dialect.name Dialect.Sqlite_like)
    (jstr (member "dialect" doc));
  Alcotest.(check (float 0.0)) "dropped" 0.0 (jnum (member "dropped" doc));
  let evs = jarr (member "events" doc) in
  Alcotest.(check int) "one object per event" 6 (List.length evs);
  let kinds = List.map (fun e -> jstr (member "type" e)) evs in
  Alcotest.(check (list string)) "typed in order"
    [ "statement"; "statement"; "pivot"; "plan"; "operator"; "oracle" ]
    kinds;
  let stmt = List.nth evs 0 and err = List.nth evs 1 in
  Alcotest.(check string) "sql rendered" "SELECT 1" (jstr (member "sql" stmt));
  Alcotest.(check string) "row outcome" "rows" (jstr (member "outcome" stmt));
  Alcotest.(check (float 0.0)) "row count" 1.0 (jnum (member "rows" stmt));
  Alcotest.(check string) "error outcome" "error" (jstr (member "outcome" err));
  Alcotest.(check string) "error text" "no such table"
    (jstr (member "error" err));
  let op = List.nth evs 4 in
  Alcotest.(check (float 0.0)) "rows_in" 3.0 (jnum (member "rows_in" op));
  Alcotest.(check (float 0.0)) "batches" 1.0 (jnum (member "batches" op));
  Alcotest.(check (float 0.0)) "btree_entries" 4.0
    (jnum (member "btree_entries" op))

(* ---------- bundles ---------- *)

let sample_bundle () =
  let stmts =
    List.map parse_sql
      [
        "CREATE TABLE t0(c0 INT)";
        "INSERT INTO t0(c0) VALUES (1), (2)";
        "SELECT c0 FROM t0 WHERE c0 > 0";
      ]
  in
  let r = Trace.create ~capacity:4 () in
  Trace.begin_round r ~seed:42 ~dialect:Dialect.Sqlite_like;
  Trace.note r "hello";
  {
    Trace.Bundle.b_seed = 42;
    b_dialect = Dialect.Sqlite_like;
    b_oracle = "containment";
    b_message = "pivot row missing\nfrom the result";
    b_phase = "containment";
    b_bugs = [ "Sq_example" ];
    b_statements = stmts;
    b_expected = Some "(1)";
    b_actual = Some "";
    b_plan = [ "SCAN t0 USING full-scan" ];
    b_trace_json = Trace.to_json r;
  }

let test_bundle_roundtrip () =
  let b = sample_bundle () in
  Alcotest.(check string) "directory naming scheme" "bundle-000042-containment"
    (Trace.Bundle.dir_name b);
  let dir = fresh_dir "pqs_bundle" in
  let sql_path = Trace.Bundle.write ~dir b in
  Alcotest.(check string) "write returns the repro.sql path"
    (Filename.concat (Filename.concat dir "bundle-000042-containment")
       "repro.sql")
    sql_path;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " written") true
        (Sys.file_exists (Filename.concat (Filename.dirname sql_path) f)))
    [ "repro.sql"; "bundle.json"; "trace.json" ];
  let headers, body = Trace.Bundle.parse_script_text (read_file sql_path) in
  let header k = List.assoc_opt k headers in
  Alcotest.(check (option string)) "dialect header"
    (Some (Dialect.name Dialect.Sqlite_like))
    (header "dialect");
  Alcotest.(check (option string)) "seed header" (Some "42") (header "seed");
  Alcotest.(check (option string)) "oracle header" (Some "containment")
    (header "oracle");
  Alcotest.(check (option string)) "phase header" (Some "containment")
    (header "phase");
  Alcotest.(check (option string)) "bugs header" (Some "Sq_example")
    (header "bugs");
  Alcotest.(check (option string)) "message is flattened to one line"
    (Some "pivot row missing from the result")
    (header "message");
  (match Sqlparse.Parser.parse_script body with
  | Ok stmts ->
      Alcotest.(check int) "body reparses to the same statement count" 3
        (List.length stmts)
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e));
  let bj = parse_json (read_file (Filename.concat (Filename.dirname sql_path) "bundle.json")) in
  Alcotest.(check string) "bundle.json oracle" "containment"
    (jstr (member "oracle" bj));
  Alcotest.(check (float 0.0)) "bundle.json statement count" 3.0
    (jnum (member "statements" bj));
  Alcotest.(check string) "bundle.json expected row" "(1)"
    (jstr (member "expected" bj));
  ignore
    (parse_json (read_file (Filename.concat (Filename.dirname sql_path) "trace.json"))
      : json)

let test_rewrite_script () =
  let b = sample_bundle () in
  let dir = fresh_dir "pqs_rewrite" in
  let sql_path = Trace.Bundle.write ~dir b in
  let reduced =
    [ parse_sql "CREATE TABLE t0(c0 INT)"; parse_sql "SELECT c0 FROM t0" ]
  in
  Trace.Bundle.rewrite_script ~sql_path ~dialect:Dialect.Sqlite_like reduced;
  let headers, body = Trace.Bundle.parse_script_text (read_file sql_path) in
  Alcotest.(check (option string)) "original header survives"
    (Some "containment")
    (List.assoc_opt "oracle" headers);
  Alcotest.(check (option string)) "reduced marker added" (Some "true")
    (List.assoc_opt "reduced" headers);
  (match Sqlparse.Parser.parse_script body with
  | Ok stmts -> Alcotest.(check int) "body replaced" 2 (List.length stmts)
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e));
  (* rewriting twice does not stack markers *)
  Trace.Bundle.rewrite_script ~sql_path ~dialect:Dialect.Sqlite_like reduced;
  let headers, _ = Trace.Bundle.parse_script_text (read_file sql_path) in
  Alcotest.(check int) "single reduced marker" 1
    (List.length (List.filter (fun (k, _) -> k = "reduced") headers))

(* ---------- oracle tokens ---------- *)

let test_oracle_tokens () =
  List.iter
    (fun o ->
      let tok = Pqs.Bug_report.oracle_token o in
      Alcotest.(check bool)
        (tok ^ " round-trips")
        true
        (Pqs.Bug_report.oracle_of_token tok = Some o))
    [
      Pqs.Bug_report.Containment;
      Pqs.Bug_report.Non_containment;
      Pqs.Bug_report.Error_oracle;
      Pqs.Bug_report.Crash;
      Pqs.Bug_report.Metamorphic;
      Pqs.Bug_report.Lint;
      Pqs.Bug_report.Plan_diff;
    ];
  Alcotest.(check bool) "unknown token rejected" true
    (Pqs.Bug_report.oracle_of_token "nonsense" = None)

(* ---------- campaign integration ---------- *)

let report_key (r : Pqs.Bug_report.t) =
  ( (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle),
    (r.Pqs.Bug_report.message, Pqs.Bug_report.script r) )

let check_bundle bugs (r : Pqs.Bug_report.t) =
  match r.Pqs.Bug_report.bundle with
  | None ->
      Alcotest.fail
        (Printf.sprintf "report for seed %d has no bundle" r.Pqs.Bug_report.seed)
  | Some sql_path ->
      Alcotest.(check bool) (sql_path ^ " exists") true
        (Sys.file_exists sql_path);
      let headers, _ = Trace.Bundle.parse_script_text (read_file sql_path) in
      let header k = List.assoc_opt k headers in
      Alcotest.(check (option string)) "oracle header matches the report"
        (Some (Pqs.Bug_report.oracle_token r.Pqs.Bug_report.oracle))
        (header "oracle");
      Alcotest.(check (option string)) "seed header matches the report"
        (Some (string_of_int r.Pqs.Bug_report.seed))
        (header "seed");
      Alcotest.(check (option string)) "phase header matches the report"
        (Some r.Pqs.Bug_report.phase) (header "phase");
      (* trace.json next door is valid JSON holding the round's statement
         history and the oracle event *)
      let doc =
        parse_json
          (read_file (Filename.concat (Filename.dirname sql_path) "trace.json"))
      in
      Alcotest.(check (float 0.0)) "trace round seed"
        (float_of_int r.Pqs.Bug_report.seed)
        (jnum (member "round_seed" doc));
      let kinds =
        List.map (fun e -> jstr (member "type" e)) (jarr (member "events" doc))
      in
      Alcotest.(check bool) "statement events recorded" true
        (List.mem "statement" kinds);
      Alcotest.(check bool) "oracle event recorded" true
        (List.mem "oracle" kinds);
      (* the acceptance contract: replaying the bundle reproduces the
         verdict *)
      (match Pqs.Replay.check_file sql_path with
      | Error e -> Alcotest.fail ("broken bundle " ^ sql_path ^ ": " ^ e)
      | Ok o ->
          Alcotest.(check bool)
            ("replay reproduces " ^ sql_path)
            true o.Pqs.Replay.reproduced);
      ignore bugs

let test_campaign_bundles () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let dir = fresh_dir "pqs_bundles" in
  let run config = Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:21 config in
  let off = run (Pqs.Runner.Config.make ~bugs dialect) in
  let on = run (Pqs.Runner.Config.make ~bugs ~bundle_dir:dir dialect) in
  Alcotest.(check bool) "campaign found bugs to compare" true
    (Pqs.Campaign.reports off <> []);
  Alcotest.(check bool) "identical report sets with tracing + bundles on" true
    (List.map report_key (Pqs.Campaign.reports off)
    = List.map report_key (Pqs.Campaign.reports on));
  List.iter (check_bundle bugs) (Pqs.Campaign.reports on);
  (* reduction rewrites the bundle script in place; the reduced script
     must still replay to the same verdict *)
  match Pqs.Campaign.reports on with
  | [] -> ()
  | r :: _ -> (
      let r' = Pqs.Reducer.reduce_report r ~bugs in
      match r'.Pqs.Bug_report.reduced with
      | Some reduced
        when List.length reduced
             < List.length r'.Pqs.Bug_report.statements -> (
          let sql_path = Option.get r'.Pqs.Bug_report.bundle in
          let headers, _ =
            Trace.Bundle.parse_script_text (read_file sql_path)
          in
          Alcotest.(check (option string)) "bundle re-derived after reduction"
            (Some "true")
            (List.assoc_opt "reduced" headers);
          match Pqs.Replay.check_file sql_path with
          | Error e -> Alcotest.fail ("broken reduced bundle: " ^ e)
          | Ok o ->
              Alcotest.(check bool) "reduced bundle still reproduces" true
                o.Pqs.Replay.reproduced)
      | _ -> ())

let test_trace_sample () =
  let dir = fresh_dir "pqs_sample" in
  let config =
    Pqs.Runner.Config.make ~bundle_dir:dir ~trace_sample:1 Dialect.Sqlite_like
  in
  let stats = Pqs.Runner.run_round config ~db_seed:5 in
  Alcotest.(check bool) "round is healthy (correct engine)" true
    (stats.Pqs.Stats.reports = []);
  let path = Filename.concat dir "round-000005-trace.json" in
  Alcotest.(check bool) "healthy-round trace written" true
    (Sys.file_exists path);
  let doc = parse_json (read_file path) in
  Alcotest.(check (float 0.0)) "trace names its round" 5.0
    (jnum (member "round_seed" doc));
  let kinds =
    List.map (fun e -> jstr (member "type" e)) (jarr (member "events" doc))
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " events present") true (List.mem k kinds))
    [ "statement"; "pivot"; "expression" ]

(* ---------- EXPLAIN ANALYZE ---------- *)

let test_explain_analyze () =
  let session = Engine.Session.create Dialect.Sqlite_like in
  ignore (exec session "CREATE TABLE t0(c0 INT, c1 TEXT)");
  ignore (exec session "INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  match
    exec session
      "EXPLAIN ANALYZE SELECT c0 FROM t0 WHERE c0 > 1 ORDER BY c0 DESC LIMIT 1"
  with
  | Engine.Session.Rows rs ->
      Alcotest.(check (list string)) "one plan column" [ "plan" ]
        rs.Engine.Executor.rs_columns;
      let lines =
        List.map
          (fun row ->
            match row.(0) with
            | Value.Text s -> s
            | _ -> Alcotest.fail "non-text plan line")
          rs.Engine.Executor.rs_rows
      in
      let find p = List.exists (has_prefix p) lines in
      Alcotest.(check bool) "SCAN line" true (find "SCAN t0");
      Alcotest.(check bool) "FILTER line" true (find "FILTER");
      Alcotest.(check bool) "SORT line" true (find "SORT");
      Alcotest.(check bool) "LIMIT line" true (find "LIMIT");
      (match List.rev lines with
      | last :: _ ->
          Alcotest.(check bool) "RESULT summary comes last" true
            (has_prefix "RESULT (rows=1" last)
      | [] -> Alcotest.fail "no plan lines");
      let scan = List.find (has_prefix "SCAN t0") lines in
      Alcotest.(check bool) "scan row counts annotated" true
        (contains_sub "in=3" scan && contains_sub "out=3" scan);
      let sort = List.find (has_prefix "SORT") lines in
      Alcotest.(check bool) "sort sees the filtered rows" true
        (contains_sub "in=2" sort && contains_sub "out=2" sort)
  | _ -> Alcotest.fail "EXPLAIN ANALYZE must return rows"

let test_explain_analyze_leaves_session_clean () =
  (* the private recorder of EXPLAIN ANALYZE must not disturb the
     session's own (noop) recorder or the catalog *)
  let session = Engine.Session.create Dialect.Sqlite_like in
  ignore (exec session "CREATE TABLE t0(c0 INT)");
  ignore (exec session "INSERT INTO t0(c0) VALUES (1)");
  ignore (exec session "EXPLAIN ANALYZE SELECT * FROM t0");
  match exec session "SELECT c0 FROM t0" with
  | Engine.Session.Rows rs ->
      Alcotest.(check int) "data still readable" 1
        (List.length rs.Engine.Executor.rs_rows)
  | _ -> Alcotest.fail "expected rows"

(* ---------- generator provenance ---------- *)

let test_provenance () =
  let dialect = Dialect.Sqlite_like in
  let session = Engine.Session.create dialect in
  let cfg = Pqs.Gen_db.Config.make ~seed:3 dialect in
  List.iter
    (fun s -> ignore (Engine.Session.execute session s))
    (Pqs.Gen_db.initial_statements cfg);
  List.iter
    (fun s -> ignore (Engine.Session.execute session s))
    (Pqs.Gen_db.fill_statements cfg session);
  let tables = Pqs.Schema_info.tables_of_session session in
  let pivot =
    List.filter_map
      (fun (ti : Pqs.Schema_info.table_info) ->
        match
          Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name
        with
        | row :: _ -> Some (ti, row)
        | [] -> None)
      tables
  in
  let rec synth seed attempts =
    if attempts = 0 then Alcotest.fail "no synthesizable query in 50 attempts"
    else
      let rng = Pqs.Rng.make ~seed in
      match
        Pqs.Gen_query.synthesize ~rng ~dialect ~pivot ~case_sensitive_like:false
          ~max_depth:4 ~check_expressions:true ()
      with
      | Ok t -> t
      | Error _ -> synth (seed + 1) (attempts - 1)
  in
  let checked = ref 0 in
  for seed = 1 to 5 do
    let t = synth (seed * 100) 50 in
    Alcotest.(check int) "one provenance triple per condition"
      (List.length t.Pqs.Gen_query.raw_truths)
      (List.length t.Pqs.Gen_query.provenance);
    let tvl = Alcotest.testable (fun ppf v -> Format.pp_print_string ppf (Tvl.show v)) ( = ) in
    Alcotest.(check (list tvl)) "provenance verdicts agree with raw_truths"
      t.Pqs.Gen_query.raw_truths
      (List.map (fun (_, v, _) -> v) t.Pqs.Gen_query.provenance);
    checked := !checked + List.length t.Pqs.Gen_query.provenance
  done;
  Alcotest.(check bool) "some conditions were actually checked" true
    (!checked > 0)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "eviction laws" `Quick test_eviction;
          Alcotest.test_case "begin_round resets" `Quick test_begin_round;
          Alcotest.test_case "noop sink" `Quick test_noop;
        ] );
      ("json", [ Alcotest.test_case "trace.json shape" `Quick test_trace_json ]);
      ( "bundle",
        [
          Alcotest.test_case "script header round-trip" `Quick
            test_bundle_roundtrip;
          Alcotest.test_case "rewrite after reduction" `Quick
            test_rewrite_script;
          Alcotest.test_case "oracle tokens" `Quick test_oracle_tokens;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bundles replay + neutrality" `Quick
            test_campaign_bundles;
          Alcotest.test_case "healthy-round trace sample" `Quick
            test_trace_sample;
        ] );
      ( "explain",
        [
          Alcotest.test_case "EXPLAIN ANALYZE lines" `Quick test_explain_analyze;
          Alcotest.test_case "session unharmed" `Quick
            test_explain_analyze_leaves_session_clean;
        ] );
      ( "generator",
        [ Alcotest.test_case "expression provenance" `Quick test_provenance ] );
    ]
