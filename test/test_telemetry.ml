(* The telemetry subsystem's contracts:

   - registry semantics: counters only add, gauges overwrite, histograms
     bucket correctly (including overflow past the last bound), and the
     noop sink records nothing;
   - merge obeys the same monoid laws as [Stats.merge] — associative,
     fresh registry as identity, bucket layouts preserved, mismatched
     layouts rejected — witnessed on [snapshot]s;
   - spans: [Span.time]/[Span.timed] record one observation per call into
     the right [_phase_seconds{phase=...}] series, also when the timed
     function raises, and the [Phase] taxonomy is internally consistent;
   - exporters: the Prometheus text is byte-exact for a known registry
     (cumulative buckets ending at +Inf), and the JSON / Chrome-trace
     documents parse with a from-scratch JSON parser (no JSON library in
     the test environment, which doubles as a strictness check);
   - neutrality: a campaign run with a live registry reports the
     identical bug set and merged stats as the same run on the noop
     sink. *)

open Sqlval

(* ---------- a minimal JSON parser (no yojson in this environment) ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* the exporters only escape control characters, so ASCII
                 suffices here *)
              Buffer.add_char b (Char.chr (code land 0x7f));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Jarr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Jarr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Jobj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad_json ("missing member " ^ name)))
  | _ -> raise (Bad_json "not an object")

let jstr = function Jstr s -> s | _ -> raise (Bad_json "not a string")
let jarr = function Jarr l -> l | _ -> raise (Bad_json "not an array")
let jnum = function Jnum f -> f | _ -> raise (Bad_json "not a number")

(* ---------- registry semantics ---------- *)

let test_counters () =
  let t = Telemetry.create () in
  Telemetry.inc t "a_total";
  Telemetry.inc t "a_total" ~by:4;
  Alcotest.(check int) "increments add" 5 (Telemetry.counter_value t "a_total");
  Alcotest.(check int) "missing counter reads 0" 0
    (Telemetry.counter_value t "absent_total");
  Telemetry.inc t ~labels:[ ("kind", "x") ] "b_total";
  Telemetry.inc t ~labels:[ ("kind", "y") ] "b_total" ~by:2;
  Telemetry.inc t ~labels:[ ("kind", "x") ] "b_total";
  Alcotest.(check int) "labels split series (x)" 2
    (Telemetry.counter_value t ~labels:[ ("kind", "x") ] "b_total");
  Alcotest.(check int) "labels split series (y)" 2
    (Telemetry.counter_value t ~labels:[ ("kind", "y") ] "b_total");
  Alcotest.(check int) "unlabelled series is distinct" 0
    (Telemetry.counter_value t "b_total");
  (* label canonicalisation: key order is irrelevant *)
  Telemetry.inc t ~labels:[ ("b", "2"); ("a", "1") ] "c_total";
  Alcotest.(check int) "label order is canonicalised" 1
    (Telemetry.counter_value t ~labels:[ ("a", "1"); ("b", "2") ] "c_total")

let test_gauges_and_type_clash () =
  let t = Telemetry.create () in
  Telemetry.set_gauge t "g" 3.0;
  Telemetry.set_gauge t "g" 1.5;
  (match Telemetry.snapshot t with
  | [ { Telemetry.s_name = "g"; s_value = Telemetry.Gauge v; _ } ] ->
      Alcotest.(check (float 0.0)) "gauge overwrites" 1.5 v
  | _ -> Alcotest.fail "expected exactly one gauge sample");
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument "Telemetry.inc: g is not a counter") (fun () ->
      Telemetry.inc t "g")

let test_histograms () =
  let t = Telemetry.create () in
  let buckets = [| 1.0; 2.0; 4.0 |] in
  List.iter
    (Telemetry.observe t ~buckets "h_seconds")
    [ 0.5; 1.0; 1.5; 2.0; 9.0 ];
  Alcotest.(check int) "count" 5 (Telemetry.histogram_count t "h_seconds");
  Alcotest.(check (float 1e-9)) "sum" 14.0 (Telemetry.histogram_sum t "h_seconds");
  (match Telemetry.snapshot t with
  | [ { Telemetry.s_value = Telemetry.Histogram { buckets; count; _ }; _ } ] ->
      Alcotest.(check (list (pair (float 0.0) int)))
        "cumulative buckets; overflow only in +Inf"
        [ (1.0, 2); (2.0, 4); (4.0, 4) ]
        buckets;
      Alcotest.(check int) "+Inf (count) covers the overflow" 5 count
  | _ -> Alcotest.fail "expected exactly one histogram sample");
  (* quantiles interpolate inside the holding bucket *)
  let q = Telemetry.quantile t "h_seconds" in
  let check_q name expect q_v =
    match q_v with
    | Some v -> Alcotest.(check (float 1e-9)) name expect v
    | None -> Alcotest.fail (name ^ ": expected Some")
  in
  check_q "p40 inside first bucket" 1.0 (q 0.4);
  check_q "p80 inside second bucket" 2.0 (q 0.8);
  check_q "p100 clamps to last bound" 4.0 (q 1.0);
  Alcotest.(check bool) "missing histogram has no quantile" true
    (Telemetry.quantile t "absent_seconds" 0.5 = None)

let test_noop () =
  let t = Telemetry.noop in
  Alcotest.(check bool) "noop is disabled" false (Telemetry.enabled t);
  Alcotest.(check bool) "create () is enabled" true
    (Telemetry.enabled (Telemetry.create ()));
  Telemetry.inc t "a_total";
  Telemetry.set_gauge t "g" 1.0;
  Telemetry.observe t "h_seconds" 0.1;
  Telemetry.inc_handle (Telemetry.counter_handle t "a_total");
  Telemetry.observe_handle (Telemetry.histogram_handle t "h_seconds") 0.1;
  Telemetry.Span.timed t Telemetry.Phase.Interp (fun () -> ());
  ignore (Telemetry.Span.time t "x" (fun () -> 42));
  Alcotest.(check (list reject)) "noop snapshot stays empty" []
    (Telemetry.snapshot t);
  Alcotest.(check string) "noop exports no series" ""
    (Telemetry.to_prometheus t)

let test_handles () =
  let t = Telemetry.create () in
  let c = Telemetry.counter_handle t ~labels:[ ("kind", "select") ] "s_total" in
  Telemetry.inc_handle c;
  Telemetry.inc_handle c ~by:2;
  (* the handle aliases the same cell the string API resolves *)
  Telemetry.inc t ~labels:[ ("kind", "select") ] "s_total";
  Alcotest.(check int) "handle and string API share the cell" 4
    (Telemetry.counter_value t ~labels:[ ("kind", "select") ] "s_total");
  let h = Telemetry.histogram_handle t "lat_seconds" in
  Telemetry.observe_handle h 0.25;
  Telemetry.observe t "lat_seconds" 0.75;
  Alcotest.(check int) "histogram handle shares the series" 2
    (Telemetry.histogram_count t "lat_seconds");
  (* merging mutates cells in place, so handles made before a merge still
     point at the live series *)
  let src = Telemetry.create () in
  Telemetry.inc src ~labels:[ ("kind", "select") ] "s_total" ~by:10;
  Telemetry.merge_into ~dst:t ~src;
  Telemetry.inc_handle c;
  Alcotest.(check int) "handle survives merge_into" 15
    (Telemetry.counter_value t ~labels:[ ("kind", "select") ] "s_total")

(* ---------- merge monoid laws ---------- *)

(* registries with overlapping and disjoint series of all three kinds *)
let sample_registry salt =
  let t = Telemetry.create () in
  Telemetry.inc t "shared_total" ~by:salt;
  Telemetry.inc t ~labels:[ ("w", string_of_int (salt mod 2)) ] "labelled_total";
  Telemetry.inc t (Printf.sprintf "only_%d_total" salt);
  Telemetry.set_gauge t "load" (float_of_int salt);
  List.iter
    (fun i -> Telemetry.observe t "lat_seconds" (float_of_int (salt + i) *. 1e-4))
    [ 0; 1; 2 ];
  t

let test_merge_laws () =
  let snap = Telemetry.snapshot in
  let a = sample_registry 1 and b = sample_registry 2 and c = sample_registry 3 in
  Alcotest.(check bool) "associative" true
    (snap (Telemetry.merge (Telemetry.merge a b) c)
    = snap (Telemetry.merge a (Telemetry.merge b c)));
  Alcotest.(check bool) "left identity" true
    (snap (Telemetry.merge (Telemetry.create ()) a) = snap a);
  Alcotest.(check bool) "right identity" true
    (snap (Telemetry.merge a (Telemetry.create ())) = snap a);
  (* merge sums every series *)
  let m = Telemetry.merge a b in
  Alcotest.(check int) "counters add" 3 (Telemetry.counter_value m "shared_total");
  Alcotest.(check int) "disjoint series survive" 1
    (Telemetry.counter_value m "only_2_total");
  Alcotest.(check int) "histogram counts add" 6
    (Telemetry.histogram_count m "lat_seconds");
  Alcotest.(check (float 1e-9)) "histogram sums add"
    (Telemetry.histogram_sum a "lat_seconds"
    +. Telemetry.histogram_sum b "lat_seconds")
    (Telemetry.histogram_sum m "lat_seconds");
  (* the sources are not consumed *)
  Alcotest.(check int) "merge leaves sources intact" 1
    (Telemetry.counter_value a "shared_total")

let test_merge_buckets () =
  let custom = [| 0.5; 1.0 |] in
  let a = Telemetry.create () and b = Telemetry.create () in
  Telemetry.observe a ~buckets:custom "h_seconds" 0.25;
  Telemetry.observe b ~buckets:custom "h_seconds" 0.75;
  (match Telemetry.snapshot (Telemetry.merge a b) with
  | [ { Telemetry.s_value = Telemetry.Histogram { buckets; _ }; _ } ] ->
      Alcotest.(check (list (pair (float 0.0) int)))
        "custom layout preserved through merge"
        [ (0.5, 1); (1.0, 2) ]
        buckets
  | _ -> Alcotest.fail "expected exactly one histogram sample");
  let c = Telemetry.create () in
  Telemetry.observe c ~buckets:[| 0.5; 2.0 |] "h_seconds" 0.25;
  Alcotest.check_raises "mismatched layouts rejected"
    (Invalid_argument "Telemetry.merge: histogram h_seconds has mismatched buckets")
    (fun () -> Telemetry.merge_into ~dst:a ~src:c)

(* ---------- clock and spans ---------- *)

let test_clock_monotonic () =
  Alcotest.(check string) "backed by the monotonic clock" "clock_monotonic"
    Telemetry.Clock.source;
  let prev = ref (Telemetry.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let now = Telemetry.Clock.now_ns () in
    if Int64.compare now !prev < 0 then Alcotest.fail "clock went backwards";
    prev := now
  done

let test_span_time () =
  let t = Telemetry.create () in
  Alcotest.(check int) "span returns its body's value" 42
    (Telemetry.Span.time t "gen_db" (fun () -> 42));
  Alcotest.(check int) "one observation per call" 1
    (Telemetry.histogram_count t
       ~labels:[ ("phase", "gen_db") ]
       "pqs_phase_seconds");
  Alcotest.(check bool) "duration is non-negative" true
    (Telemetry.histogram_sum t ~labels:[ ("phase", "gen_db") ] "pqs_phase_seconds"
    >= 0.0);
  (* the duration is recorded even when the body raises, and the
     exception propagates *)
  (match Telemetry.Span.time t "gen_db" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure msg ->
      Alcotest.(check string) "exception propagates" "boom" msg);
  Alcotest.(check int) "raising bodies are still timed" 2
    (Telemetry.histogram_count t
       ~labels:[ ("phase", "gen_db") ]
       "pqs_phase_seconds");
  (* pre-resolved span handles share the series *)
  let h = Telemetry.Span.handle t "gen_db" in
  Telemetry.Span.time_with h (fun () -> ());
  Alcotest.(check int) "Span.handle shares the series" 3
    (Telemetry.histogram_count t
       ~labels:[ ("phase", "gen_db") ]
       "pqs_phase_seconds")

let test_phase_taxonomy () =
  (* every taxonomy phase records into its own series of the right family *)
  let t = Telemetry.create () in
  List.iter
    (fun p -> Telemetry.Span.timed t p (fun () -> ()))
    Telemetry.Phase.all;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Telemetry.Phase.name p ^ " recorded once")
        1
        (Telemetry.histogram_count t
           ~labels:[ ("phase", Telemetry.Phase.name p) ]
           (Telemetry.Phase.metric p)))
    Telemetry.Phase.all;
  let names = List.map Telemetry.Phase.name Telemetry.Phase.all in
  Alcotest.(check int) "phase names are distinct"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  Alcotest.(check bool) "families are pqs_ or minidb_" true
    (List.for_all
       (fun p ->
         let m = Telemetry.Phase.metric p in
         m = "pqs_phase_seconds" || m = "minidb_phase_seconds")
       Telemetry.Phase.all);
  (* Span.timed and the string API hit the same series *)
  Telemetry.Span.time t "rectify" (fun () -> ());
  Alcotest.(check int) "Span.timed aliases the string-keyed series" 2
    (Telemetry.histogram_count t
       ~labels:[ ("phase", "rectify") ]
       "pqs_phase_seconds")

(* ---------- exporters ---------- *)

let test_prometheus_golden () =
  let t = Telemetry.create () in
  Telemetry.inc t ~labels:[ ("kind", "select") ] "minidb_statements_total" ~by:7;
  Telemetry.set_gauge t "pqs_campaign_domains" 4.0;
  List.iter
    (Telemetry.observe t ~buckets:[| 0.1; 1.0 |] "pqs_round_seconds")
    [ 0.05; 0.5; 5.0 ];
  let expected =
    String.concat "\n"
      [
        "# HELP minidb_statements_total Statements executed by the engine, \
         by statement kind.";
        "# TYPE minidb_statements_total counter";
        "minidb_statements_total{kind=\"select\"} 7";
        "# HELP pqs_campaign_domains Worker domains of the campaign.";
        "# TYPE pqs_campaign_domains gauge";
        "pqs_campaign_domains 4";
        "# HELP pqs_round_seconds Wall time of one complete database round \
         (one seed).";
        "# TYPE pqs_round_seconds histogram";
        "pqs_round_seconds_bucket{le=\"0.1\"} 1";
        "pqs_round_seconds_bucket{le=\"1\"} 2";
        "pqs_round_seconds_bucket{le=\"+Inf\"} 3";
        "pqs_round_seconds_sum 5.55";
        "pqs_round_seconds_count 3";
        "";
      ]
  in
  Alcotest.(check string) "byte-exact exposition" expected
    (Telemetry.to_prometheus t)

let test_json_export () =
  let t = Telemetry.create () in
  Telemetry.inc t ~labels:[ ("kind", "select") ] "minidb_statements_total" ~by:7;
  Telemetry.set_gauge t "pqs_campaign_domains" 4.0;
  List.iter
    (Telemetry.observe t ~buckets:[| 0.1; 1.0 |] "pqs_round_seconds")
    [ 0.05; 0.5; 5.0 ];
  let doc = parse_json (Telemetry.to_json t) in
  Alcotest.(check string) "clock is identified" "clock_monotonic"
    (jstr (member "clock" doc));
  let metrics = jarr (member "metrics" doc) in
  Alcotest.(check int) "one object per series" 3 (List.length metrics);
  let find name =
    List.find (fun m -> jstr (member "name" m) = name) metrics
  in
  let counter = find "minidb_statements_total" in
  Alcotest.(check string) "counter type" "counter" (jstr (member "type" counter));
  Alcotest.(check (float 0.0)) "counter value" 7.0 (jnum (member "value" counter));
  Alcotest.(check string) "labels round-trip" "select"
    (jstr (member "kind" (member "labels" counter)));
  let hist = find "pqs_round_seconds" in
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (jnum (member "count" hist));
  let buckets = jarr (member "buckets" hist) in
  Alcotest.(check int) "buckets include +Inf" 3 (List.length buckets);
  let last = List.nth buckets 2 in
  Alcotest.(check string) "last bucket is +Inf" "+Inf" (jstr (member "le" last));
  Alcotest.(check (float 0.0)) "+Inf holds the total count" 3.0
    (jnum (member "count" last));
  let cum = List.map (fun b -> jnum (member "count" b)) buckets in
  Alcotest.(check bool) "bucket counts are cumulative" true
    (List.sort compare cum = cum)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_write_file_by_suffix () =
  let t = Telemetry.create () in
  Telemetry.inc t "pqs_rounds_total";
  let json_path = Filename.temp_file "tele" ".json" in
  let prom_path = Filename.temp_file "tele" ".prom" in
  Telemetry.write_file t json_path;
  Telemetry.write_file t prom_path;
  let j = read_file json_path and p = read_file prom_path in
  Sys.remove json_path;
  Sys.remove prom_path;
  ignore (parse_json j : json);
  Alcotest.(check bool) ".json writes the JSON snapshot" true
    (String.length j > 0 && j.[0] = '{');
  Alcotest.(check bool) "other suffixes write Prometheus text" true
    (String.length p > 6 && String.sub p 0 6 = "# HELP")

let test_chrome_trace () =
  let events =
    [
      Telemetry.Trace.process_name "pqs campaign";
      Telemetry.Trace.thread_name ~tid:1 "worker 1";
      Telemetry.Trace.complete ~name:"seed 5"
        ~args:[ ("seed", Telemetry.Trace.Int 5) ]
        ~ts_us:100.0 ~dur_us:250.5 ~tid:1 ();
    ]
  in
  let doc = parse_json (Telemetry.Trace.to_json events) in
  let evs = jarr (member "traceEvents" doc) in
  Alcotest.(check int) "all events emitted" 3 (List.length evs);
  let complete =
    List.find (fun e -> jstr (member "ph" e) = "X") evs
  in
  Alcotest.(check string) "complete event name" "seed 5"
    (jstr (member "name" complete));
  Alcotest.(check (float 0.0)) "microsecond timestamp" 100.0
    (jnum (member "ts" complete));
  Alcotest.(check (float 1e-9)) "duration" 250.5 (jnum (member "dur" complete));
  Alcotest.(check (float 0.0)) "args carried through" 5.0
    (jnum (member "seed" (member "args" complete)));
  Alcotest.(check int) "metadata events use ph=M" 2
    (List.length (List.filter (fun e -> jstr (member "ph" e) = "M") evs))

(* ---------- campaign neutrality ---------- *)

let report_key (r : Pqs.Bug_report.t) =
  ( (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle),
    (r.Pqs.Bug_report.message, Pqs.Bug_report.script r) )

let strip_reports (s : Pqs.Stats.t) = { s with Pqs.Stats.reports = [] }

let test_campaign_neutral () =
  let bugs =
    Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like)
  in
  let run telemetry =
    let config = Pqs.Runner.Config.make ~bugs ~telemetry Dialect.Sqlite_like in
    Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:21 config
  in
  let tele = Telemetry.create () in
  let off = run Telemetry.noop and on = run tele in
  Alcotest.(check bool) "campaign found bugs to compare" true
    (Pqs.Campaign.reports off <> []);
  Alcotest.(check (list (pair (pair int string) (pair string string))))
    "identical bug-report sets with telemetry on"
    (List.map report_key (Pqs.Campaign.reports off))
    (List.map report_key (Pqs.Campaign.reports on));
  Alcotest.(check bool) "identical merged stats with telemetry on" true
    (strip_reports off.Pqs.Campaign.stats = strip_reports on.Pqs.Campaign.stats);
  (* and the registry actually observed the run: per-worker registries
     were merged after the join *)
  Alcotest.(check int) "rounds counted" 20
    (Telemetry.counter_value tele "pqs_rounds_total");
  Alcotest.(check int) "statements counted"
    on.Pqs.Campaign.stats.Pqs.Stats.statements
    (Telemetry.counter_value tele "pqs_statements_total");
  Alcotest.(check int) "round latency histogram filled" 20
    (Telemetry.histogram_count tele "pqs_round_seconds");
  Alcotest.(check bool) "loop phase spans recorded" true
    (Telemetry.histogram_count tele
       ~labels:[ ("phase", "gen_db") ]
       "pqs_phase_seconds"
    > 0);
  Alcotest.(check bool) "engine phase spans recorded" true
    (Telemetry.histogram_count tele
       ~labels:[ ("phase", "execute") ]
       "minidb_phase_seconds"
    > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges and type clash" `Quick
            test_gauges_and_type_clash;
          Alcotest.test_case "histograms and quantiles" `Quick test_histograms;
          Alcotest.test_case "noop sink" `Quick test_noop;
          Alcotest.test_case "pre-resolved handles" `Quick test_handles;
        ] );
      ( "merge",
        [
          Alcotest.test_case "monoid laws" `Quick test_merge_laws;
          Alcotest.test_case "bucket layouts" `Quick test_merge_buckets;
        ] );
      ( "spans",
        [
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "span timing" `Quick test_span_time;
          Alcotest.test_case "phase taxonomy" `Quick test_phase_taxonomy;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json snapshot" `Quick test_json_export;
          Alcotest.test_case "write_file suffix" `Quick
            test_write_file_by_suffix;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "telemetry neutrality" `Quick test_campaign_neutral;
        ] );
    ]
