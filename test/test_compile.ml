(* The compiled execution backend's contract: observational equivalence
   with the tree-walking interpreter.

   - per-expression-kind closure compilation: every expression
     constructor (literals, columns, unary/binary operators, IS forms,
     BETWEEN, IN, LIKE/GLOB, CAST, functions, CASE, COLLATE, misused
     aggregates) produces the same value or the same error under both
     backends, as a projection and as a WHERE predicate, across
     dialects and with expression-level bugs injected;
   - coverage parity: a compiled run fires the identical coverage
     points with identical multiplicity;
   - 1,000-seed equivalence sweep: on generated databases the two
     backends return identical result multisets (columns, rows, order)
     for a battery of scans, filters, DISTINCT/ORDER BY/LIMIT
     pipelines, compounds and VALUES;
   - campaign neutrality: [Runner.run_round] and [Campaign.run] produce
     identical statistics and identical bug reports whichever backend
     the config selects — for the bug-free engine and for every
     injected bug in the catalog;
   - backend API: name/of_name round-trips and session routing. *)

open Sqlval
module A = Sqlast.Ast
module Ex = Engine.Executor

let parse_sql sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok s -> s
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e)

let exec session sql =
  match Engine.Session.execute session (parse_sql sql) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.Errors.show e)

(* a fixture with typed and collated columns, NULLs, negative and real
   values, and duplicate rows (DISTINCT fodder) *)
let fixture ?(bugs = Engine.Bug.empty_set) ?backend dialect =
  let session = Engine.Session.create ~bugs ?backend dialect in
  List.iter (exec session)
    [
      "CREATE TABLE t0(c0 INTEGER, c1 TEXT COLLATE NOCASE, c2 REAL, c3 TEXT)";
      "INSERT INTO t0(c0, c1, c2, c3) VALUES (1, 'Abc', 0.5, 'x%'), \
       (2, 'abc', -1.5, NULL), (NULL, 'zzz', 2.0, 'yy'), \
       (-3, NULL, 0.0, 'x%'), (2, 'abc', -1.5, NULL)";
      "CREATE TABLE t1(d0 INTEGER)";
      "INSERT INTO t1(d0) VALUES (1), (2), (4)";
    ];
  session

let show_result = function
  | Ok rs -> Format.asprintf "%a" Ex.pp_result_set rs
  | Error e -> "error: " ^ Engine.Errors.show e

(* observational equality of the two backends on one query; [compare]
   (not [=]) so NaN-carrying rows still count as equal *)
let same_result name ctx q =
  let a = Ex.run_query ctx q in
  let b = Engine.Compile.run_query ctx q in
  match (a, b) with
  | Ok ra, Ok rb ->
      if
        ra.Ex.rs_columns <> rb.Ex.rs_columns
        || Stdlib.compare ra.Ex.rs_rows rb.Ex.rs_rows <> 0
      then
        Alcotest.fail
          (Printf.sprintf "%s:\ninterpreted: %s\ncompiled: %s" name
             (show_result a) (show_result b))
  | Error ea, Error eb ->
      Alcotest.(check string) name (Engine.Errors.show ea)
        (Engine.Errors.show eb)
  | _ ->
      Alcotest.fail
        (Printf.sprintf "%s:\ninterpreted: %s\ncompiled: %s" name
           (show_result a) (show_result b))

let select ?(distinct = false) ?(items = [ A.Star ]) ?from ?where
    ?(order_by = []) ?limit ?offset () =
  A.Q_select
    {
      A.sel_distinct = distinct;
      sel_items = items;
      sel_from =
        (match from with
        | Some f -> f
        | None -> [ A.F_table { name = "t0"; alias = None } ]);
      sel_where = where;
      sel_group_by = [];
      sel_having = None;
      sel_order_by = order_by;
      sel_limit = limit;
      sel_offset = offset;
    }

(* ---------- per-expression-kind closure compilation ---------- *)

let c0 = A.col "c0"
let c1 = A.col "c1"
let c2 = A.col "c2"
let c3 = A.col "c3"
let i n = A.int_lit (Int64.of_int n)
let s v = A.text_lit v

(* one expression per compiler case (and then some), mixing columns so
   the closures read the current row *)
let expr_battery =
  [
    ("lit-int", i 42);
    ("lit-null", A.null_lit);
    ("lit-real", A.lit (Value.Real 1.5));
    ("col", c0);
    ("col-qualified", A.col ~table:"t0" "c1");
    ("col-missing", A.col "nope");
    ("col-qualified-missing-table", A.col ~table:"nope" "c0");
    ("unary-not", A.not_ (A.Binary (A.Gt, c0, i 1)));
    ("unary-not-not", A.not_ (A.not_ (A.Binary (A.Gt, c0, i 1))));
    ("unary-neg", A.Unary (A.Neg, c0));
    ("unary-neg-text", A.Unary (A.Neg, c1));
    ("unary-pos", A.Unary (A.Pos, c2));
    ("unary-bitnot", A.Unary (A.Bit_not, c0));
    ("and", A.Binary (A.And, A.Binary (A.Gt, c0, i 0), A.isnull c3));
    ("and-shortcircuit", A.Binary (A.And, A.Binary (A.Gt, i 0, i 1), c1));
    ("or", A.Binary (A.Or, A.Binary (A.Lt, c0, i 0), A.isnull c1));
    ("or-shortcircuit", A.Binary (A.Or, A.Binary (A.Lt, i 0, i 1), c1));
    ("concat", A.Binary (A.Concat, c1, s "!"));
    ("concat-null", A.Binary (A.Concat, c3, s "!"));
    ("eq", A.Binary (A.Eq, c0, i 2));
    ("eq-nocase", A.Binary (A.Eq, c1, s "ABC"));
    ("neq", A.Binary (A.Neq, c0, i 2));
    ("lt", A.Binary (A.Lt, c2, A.lit (Value.Real 0.0)));
    ("le", A.Binary (A.Le, c0, i 1));
    ("gt", A.Binary (A.Gt, c0, c2));
    ("ge", A.Binary (A.Ge, c1, c3));
    ("eq-affinity", A.Binary (A.Eq, c0, s "2"));
    ("add", A.Binary (A.Add, c0, i 7));
    ("sub", A.Binary (A.Sub, c0, c2));
    ("mul", A.Binary (A.Mul, c0, c0));
    ("div", A.Binary (A.Div, i 10, c0));
    ("div-zero", A.Binary (A.Div, c0, i 0));
    ("rem", A.Binary (A.Rem, c0, i 2));
    ("bit-and", A.Binary (A.Bit_and, c0, i 3));
    ("bit-or", A.Binary (A.Bit_or, c0, i 8));
    ("shl", A.Binary (A.Shift_left, c0, i 2));
    ("shr", A.Binary (A.Shift_right, c0, i 1));
    ("is-null", A.isnull c3);
    ("is-not-null", A.Is { negated = true; arg = c3; rhs = A.Is_null });
    ("is-true", A.Is { negated = false; arg = c0; rhs = A.Is_true });
    ("is-not-false", A.Is { negated = true; arg = c0; rhs = A.Is_false });
    ("is-expr", A.Is { negated = false; arg = c0; rhs = A.Is_expr (i 2) });
    ( "is-distinct-from",
      A.Is { negated = false; arg = c0; rhs = A.Is_distinct_from (i 2) } );
    ( "between",
      A.Between { negated = false; arg = c0; lo = i 0; hi = i 2 } );
    ( "not-between",
      A.Between { negated = true; arg = c2; lo = c0; hi = i 9 } );
    ("in", A.In_list { negated = false; arg = c0; list = [ i 1; i 2 ] });
    ( "in-with-null",
      A.In_list { negated = false; arg = c0; list = [ i 9; A.null_lit ] } );
    ("in-empty", A.In_list { negated = false; arg = c0; list = [] });
    ( "not-in",
      A.In_list { negated = true; arg = c1; list = [ s "abc"; s "zzz" ] } );
    ( "like",
      A.Like { negated = false; arg = c1; pattern = s "a%"; escape = None } );
    ( "like-escape",
      A.Like
        {
          negated = false;
          arg = c3;
          pattern = s "x\\%";
          escape = Some (s "\\");
        } );
    ( "not-like",
      A.Like { negated = true; arg = c1; pattern = s "_b_"; escape = None } );
    ( "like-bad-escape",
      A.Like
        { negated = false; arg = c1; pattern = s "a%"; escape = Some (s "xx") }
    );
    ("glob", A.Glob { negated = false; arg = c1; pattern = s "[aA]*" });
    ("not-glob", A.Glob { negated = true; arg = c3; pattern = s "x*" });
    ( "cast-int",
      A.Cast (Datatype.Int { width = Datatype.Regular; unsigned = false }, c2)
    );
    ( "cast-unsigned",
      A.Cast (Datatype.Int { width = Datatype.Big; unsigned = true }, c0) );
    ("cast-text", A.Cast (Datatype.Text, c0));
    ("cast-real", A.Cast (Datatype.Real, c1));
    ("func-abs", A.Func (A.F_abs, [ c0 ]));
    ("func-length", A.Func (A.F_length, [ c1 ]));
    ("func-lower", A.Func (A.F_lower, [ c1 ]));
    ("func-upper", A.Func (A.F_upper, [ c3 ]));
    ("func-coalesce", A.Func (A.F_coalesce, [ c3; c1; s "fallback" ]));
    ("func-ifnull", A.Func (A.F_ifnull, [ c3; s "d" ]));
    ("func-nullif", A.Func (A.F_nullif, [ c1; s "ABC" ]));
    ("func-typeof", A.Func (A.F_typeof, [ c2 ]));
    ("func-trim", A.Func (A.F_trim, [ c1 ]));
    ("func-ltrim", A.Func (A.F_ltrim, [ s "  pad" ]));
    ("func-rtrim", A.Func (A.F_rtrim, [ s "pad  " ]));
    ("func-substr", A.Func (A.F_substr, [ c1; i 2 ]));
    ("func-substr3", A.Func (A.F_substr, [ c1; i (-2); i 2 ]));
    ("func-replace", A.Func (A.F_replace, [ c1; s "b"; s "B" ]));
    ("func-instr", A.Func (A.F_instr, [ c1; s "bc" ]));
    ("func-hex", A.Func (A.F_hex, [ c1 ]));
    ("func-round", A.Func (A.F_round, [ c2; i 1 ]));
    ("func-sign", A.Func (A.F_sign, [ c2 ]));
    ("func-quote", A.Func (A.F_quote, [ c3 ]));
    ("func-least", A.Func (A.F_least, [ c0; i 0 ]));
    ("func-wrong-arity", A.Func (A.F_abs, [ c0; c1 ]));
    ("agg-misuse", A.Agg (A.A_count_star, None));
    ( "case",
      A.Case
        {
          operand = None;
          branches =
            [
              (A.Binary (A.Gt, c0, i 1), s "big");
              (A.isnull c0, s "null");
            ];
          else_ = Some (s "small");
        } );
    ( "case-operand",
      A.Case
        {
          operand = Some c0;
          branches = [ (i 1, s "one"); (i 2, s "two") ];
          else_ = None;
        } );
    ( "case-no-else",
      A.Case { operand = None; branches = [ (A.isnull c1, c3) ]; else_ = None }
    );
    ("collate", A.Binary (A.Eq, A.Collate (c3, Collation.Nocase), s "X%"));
    ("nested", A.Binary (A.And, A.not_ (A.isnull c0),
        A.Binary (A.Or, A.Binary (A.Le, c0, c2),
          A.In_list { negated = false; arg = c1; list = [ s "abc"; c3 ] })));
  ]

let queries_for e =
  [
    select ~items:[ A.Sel_expr (e, Some "r") ] ();
    select ~where:(e) ();
    select ~items:[ A.Sel_expr (e, None) ] ~where:(e)
      ~order_by:[ (e, A.Desc) ]
      ();
  ]

let test_expr_battery dialect ?(bugs = Engine.Bug.empty_set) () =
  let session = fixture ~bugs dialect in
  let ctx = Engine.Session.ctx session in
  List.iter
    (fun (label, e) ->
      List.iteri
        (fun j q ->
          same_result (Printf.sprintf "%s[%d]" label j) ctx q)
        (queries_for e))
    expr_battery

(* dialect-specific operators on their own dialects *)
let test_dialect_exprs () =
  List.iter
    (fun dialect -> test_expr_battery dialect ())
    [ Dialect.Mysql_like; Dialect.Postgres_like ];
  (* mysql's || is logical OR, <=> is its null-safe equality *)
  let session = fixture Dialect.Mysql_like in
  let ctx = Engine.Session.ctx session in
  same_result "mysql-concat-or" ctx
    (select ~where:((A.Binary (A.Concat, c0, A.isnull c3))) ());
  same_result "mysql-nullsafe-eq" ctx
    (select ~where:((A.Binary (A.Null_safe_eq, c0, A.null_lit))) ())

(* expression-level injected bugs: the compiled backend must be exactly
   as buggy as the interpreter *)
let test_bug_exprs () =
  let sqlite_bugs =
    [
      Engine.Bug.Sq_case_null_when;
      Engine.Bug.Sq_null_in_list_false;
      Engine.Bug.Sq_nocase_like_case_sensitive;
      Engine.Bug.Sq_rtrim_compare_asymmetric;
      Engine.Bug.Sq_between_collate_ignored;
      Engine.Bug.Sq_glob_range_exclusive;
    ]
  in
  List.iter
    (fun bug ->
      test_expr_battery Dialect.Sqlite_like
        ~bugs:(Engine.Bug.set_of_list [ bug ])
        ())
    sqlite_bugs;
  test_expr_battery Dialect.Mysql_like
    ~bugs:(Engine.Bug.set_of_list [ Engine.Bug.My_double_negation_fold ])
    ()

(* ---------- coverage parity ---------- *)

let test_coverage_parity () =
  let hits ctx q =
    let cov = Engine.Coverage.create () in
    let ctx = { ctx with Ex.coverage = Some cov } in
    (match q with
    | `I q -> ignore (Ex.run_query ctx q)
    | `C q -> ignore (Engine.Compile.run_query ctx q));
    ( Engine.Coverage.points_hit cov,
      List.filter_map
        (fun p ->
          match Engine.Coverage.hit_count cov p with
          | 0 -> None
          | n -> Some (p, n))
        Engine.Coverage.static_universe )
  in
  let session = fixture Dialect.Sqlite_like in
  let ctx = Engine.Session.ctx session in
  List.iter
    (fun (label, e) ->
      List.iteri
        (fun j q ->
          let pi, hi = hits ctx (`I q) in
          let pc, hc = hits ctx (`C q) in
          let name = Printf.sprintf "cov %s[%d]" label j in
          Alcotest.(check int) (name ^ " points") pi pc;
          Alcotest.(check (list (pair string int))) (name ^ " counts") hi hc)
        (queries_for e))
    expr_battery

(* ---------- 1,000-seed equivalence sweep ---------- *)

let gen_session seed =
  let dialect = Dialect.Sqlite_like in
  let session = Engine.Session.create ~seed dialect in
  let cfg = Pqs.Gen_db.Config.make ~seed dialect in
  let run stmt =
    match Engine.Session.execute session stmt with
    | Ok _ | Error _ -> ()
    | exception Engine.Errors.Crash _ -> ()
  in
  List.iter run (Pqs.Gen_db.initial_statements cfg);
  List.iter run (Pqs.Gen_db.fill_statements cfg session);
  session

(* scans, filters and full pipelines over one generated table *)
let sweep_queries session =
  let tables = Pqs.Schema_info.tables_of_session session in
  List.concat_map
    (fun (ti : Pqs.Schema_info.table_info) ->
      let name = ti.Pqs.Schema_info.ti_name in
      let from = [ A.F_table { name; alias = None } ] in
      match ti.Pqs.Schema_info.ti_columns with
      | [] -> [ select ~from () ]
      | (col0 : Pqs.Schema_info.column_info) :: _ ->
          let c = A.col col0.Pqs.Schema_info.ci_name in
          let v =
            match Pqs.Schema_info.rows_of_table session name with
            | row :: _ when Array.length row > 0 -> row.(0)
            | _ -> Value.Null
          in
          let base = select ~from in
          [
            base ();
            base ~where:((A.Binary (A.Eq, c, A.lit v))) ();
            base ~where:((A.Binary (A.Gt, c, A.lit v))) ();
            base ~distinct:true ~items:[ A.Sel_expr (c, None) ] ();
            base
              ~items:[ A.Sel_expr (c, Some "k"); A.Star ]
              ~order_by:[ (c, A.Desc) ]
              ();
            base
              ~where:((A.not_ (A.isnull c)))
              ~order_by:[ (c, A.Asc) ]
              ~limit:3L ~offset:1L ();
            A.Q_compound (A.Union, base (), base ());
            A.Q_compound
              ( A.Intersect,
                select ~from ~items:[ A.Sel_expr (c, None) ] (),
                select ~from ~items:[ A.Sel_expr (c, None) ] () );
            A.Q_compound
              ( A.Except,
                select ~from ~items:[ A.Sel_expr (c, None) ] (),
                A.Q_values [ [ A.lit v ] ] );
          ])
    tables
  @ [
      A.Q_values [ [ i 1; s "a" ]; [ A.null_lit; s "b" ] ];
      select ~from:[] ~items:[ A.Sel_expr (A.Binary (A.Add, i 1, i 2), None) ]
        ();
      select ~from:[]
        ~items:[ A.Sel_expr (i 1, None) ]
        ~where:((A.Binary (A.Eq, i 1, i 2)))
        ();
    ]

let test_equivalence_sweep () =
  let queries = ref 0 in
  for seed = 1 to 1000 do
    let session = gen_session seed in
    let ctx = Engine.Session.ctx session in
    List.iter
      (fun q ->
        incr queries;
        same_result (Printf.sprintf "seed %d" seed) ctx q)
      (sweep_queries session)
  done;
  Alcotest.(check bool) "swept a real battery" true (!queries > 5000)

(* ---------- campaign neutrality ---------- *)

let round_stats backend ~bugs ~db_seed =
  Pqs.Runner.run_round
    (Pqs.Runner.Config.make ~bugs ~backend Dialect.Sqlite_like)
    ~db_seed

let test_round_parity () =
  for db_seed = 1 to 150 do
    let a =
      round_stats Engine.Exec_backend.Interpreted
        ~bugs:Engine.Bug.empty_set ~db_seed
    and b =
      round_stats Engine.Exec_backend.Compiled ~bugs:Engine.Bug.empty_set
        ~db_seed
    in
    if a <> b then
      Alcotest.fail
        (Printf.sprintf "round stats diverge at seed %d" db_seed)
  done

(* every injected bug: same rounds, same findings, either backend *)
let test_round_parity_bug_catalog () =
  List.iter
    (fun bug ->
      let bugs = Engine.Bug.set_of_list [ bug ] in
      List.iter
        (fun db_seed ->
          let run backend =
            match round_stats backend ~bugs ~db_seed with
            | st -> Ok st
            | exception Engine.Errors.Crash m -> Error m
          in
          let a = run Engine.Exec_backend.Interpreted
          and b = run Engine.Exec_backend.Compiled in
          if a <> b then
            Alcotest.fail
              (Printf.sprintf "%s: stats diverge at seed %d"
                 (Engine.Bug.show bug) db_seed))
        [ 3; 17; 7919 ])
    Engine.Bug.all

let test_campaign_parity () =
  let campaign backend =
    let c =
      Pqs.Campaign.run ~domains:1 ~seed_lo:1 ~seed_hi:101
        (Pqs.Runner.Config.make ~backend Dialect.Sqlite_like)
    in
    (Pqs.Campaign.reports c, c.Pqs.Campaign.stats)
  in
  let ra, sa = campaign Engine.Exec_backend.Interpreted in
  let rb, sb = campaign Engine.Exec_backend.Compiled in
  Alcotest.(check bool) "identical reports" true (ra = rb);
  Alcotest.(check bool) "identical merged stats" true (sa = sb)

(* ---------- backend API ---------- *)

let test_backend_api () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Engine.Exec_backend.name k ^ " round-trips")
        true
        (Engine.Exec_backend.of_name (Engine.Exec_backend.name k) = Ok k))
    Engine.Exec_backend.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Result.is_error (Engine.Exec_backend.of_name "llvm"));
  let session =
    Engine.Session.create ~backend:Engine.Exec_backend.Compiled
      Dialect.Sqlite_like
  in
  Alcotest.(check bool) "session remembers its backend" true
    (Engine.Session.backend session = Engine.Exec_backend.Compiled);
  Alcotest.(check bool) "default is interpreted" true
    (Engine.Session.backend (Engine.Session.create Dialect.Sqlite_like)
    = Engine.Exec_backend.Interpreted)

(* a compiled session produces working results end to end, including
   EXPLAIN ANALYZE batch annotations *)
let test_compiled_session () =
  let session = fixture ~backend:Engine.Exec_backend.Compiled Dialect.Sqlite_like in
  (match
     Engine.Session.execute session
       (parse_sql "SELECT c0 FROM t0 WHERE c0 > 0 ORDER BY c0")
   with
  | Ok (Engine.Session.Rows rs) ->
      Alcotest.(check int) "rows" 3 (List.length rs.Ex.rs_rows)
  | other ->
      Alcotest.fail
        (Format.asprintf "unexpected: %a"
           (fun fmt -> function
             | Ok r -> Engine.Session.pp_exec_result fmt r
             | Error e -> Format.pp_print_string fmt (Engine.Errors.show e))
           other));
  match
    Engine.Session.execute session
      (parse_sql "EXPLAIN ANALYZE SELECT * FROM t0 WHERE c0 > 0")
  with
  | Ok (Engine.Session.Rows rs) ->
      let lines =
        List.map
          (function [| Value.Text l |] -> l | _ -> "?")
          rs.Ex.rs_rows
      in
      Alcotest.(check bool)
        ("a batches= annotation is present in: "
        ^ String.concat " | " lines)
        true
        (List.exists
           (fun l ->
             let re = "batches=" in
             let ll = String.length l and lr = String.length re in
             let rec go i =
               i + lr <= ll && (String.sub l i lr = re || go (i + 1))
             in
             go 0)
           lines)
  | _ -> Alcotest.fail "EXPLAIN ANALYZE failed"

let () =
  Alcotest.run "compile"
    [
      ( "expressions",
        [
          Alcotest.test_case "sqlite battery" `Quick (fun () ->
              test_expr_battery Dialect.Sqlite_like ());
          Alcotest.test_case "all dialects" `Quick test_dialect_exprs;
          Alcotest.test_case "injected expression bugs" `Quick test_bug_exprs;
          Alcotest.test_case "coverage parity" `Quick test_coverage_parity;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "1,000-seed equivalence" `Quick
            test_equivalence_sweep;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "round parity, bug-free" `Quick test_round_parity;
          Alcotest.test_case "round parity, injected catalog" `Slow
            test_round_parity_bug_catalog;
          Alcotest.test_case "campaign parity" `Quick test_campaign_parity;
        ] );
      ( "api",
        [
          Alcotest.test_case "backend names and routing" `Quick
            test_backend_api;
          Alcotest.test_case "compiled session end to end" `Quick
            test_compiled_session;
        ] );
    ]
