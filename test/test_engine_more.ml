(* Additional engine coverage: dialect semantics corner cases, DDL/DML
   edge cases, maintenance statements, option handling, and property tests
   for planner soundness (index path = full scan). *)

open Sqlval
module A = Sqlast.Ast

let exec s stmt =
  match Engine.Session.execute s stmt with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected error: %s" (Engine.Errors.show e)

let exec_sql s sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Error e -> Alcotest.failf "parse failed (%s): %s" sql (Sqlparse.Parser.show_error e)
  | Ok stmt -> exec s stmt

let exec_sql_err s sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Error e -> Alcotest.failf "parse failed (%s): %s" sql (Sqlparse.Parser.show_error e)
  | Ok stmt -> (
      match Engine.Session.execute s stmt with
      | Ok _ -> Alcotest.failf "expected error for %s" sql
      | Error e -> e)

let rows_sql s sql =
  match exec_sql s sql with
  | Engine.Session.Rows rs -> rs.Engine.Executor.rs_rows
  | _ -> Alcotest.failf "expected rows from %s" sql

let script s sqls = List.iter (fun sql -> ignore (exec_sql s sql)) sqls

let show_rows rows =
  String.concat ";"
    (List.map
       (fun r ->
         String.concat "|" (Array.to_list (Array.map Value.to_display r)))
       rows)

(* ---------- expression semantics ---------- *)

let test_three_valued_where () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s [ "CREATE TABLE t0(c0)"; "INSERT INTO t0(c0) VALUES (1), (NULL), (0)" ];
  Alcotest.(check int) "where c0" 1 (List.length (rows_sql s "SELECT * FROM t0 WHERE c0"));
  Alcotest.(check int) "where NOT c0" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE NOT c0"));
  Alcotest.(check int) "where c0 IS NULL" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 IS NULL"))

let test_sqlite_affinity_compare () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0 INT)";
      "INSERT INTO t0(c0) VALUES ('12')" (* affinity converts to 12 *);
    ];
  Alcotest.(check int) "text literal compares numerically via affinity" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 = '12'"));
  Alcotest.(check int) "numeric compare" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 = 12"))

let test_division_semantics () =
  let one_value s sql =
    match rows_sql s sql with
    | [ [| v |] ] -> v
    | _ -> Alcotest.fail "expected one value"
  in
  let sq = Engine.Session.create Dialect.Sqlite_like in
  Alcotest.(check string) "sqlite int division" "3"
    (Value.to_display (one_value sq "SELECT 7 / 2"));
  Alcotest.(check string) "sqlite div by zero" "NULL"
    (Value.to_display (one_value sq "SELECT 7 / 0"));
  let my = Engine.Session.create Dialect.Mysql_like in
  Alcotest.(check string) "mysql real division" "3.5"
    (Value.to_display (one_value my "SELECT 7 / 2"));
  let pg = Engine.Session.create Dialect.Postgres_like in
  Alcotest.(check string) "pg int division" "3"
    (Value.to_display (one_value pg "SELECT 7 / 2"));
  let e = exec_sql_err pg "SELECT 7 / 0" in
  Alcotest.(check bool) "pg division by zero errors" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Division_by_zero)

let test_concat_semantics () =
  let one_value s sql =
    match rows_sql s sql with [ [| v |] ] -> v | _ -> Alcotest.fail "one value"
  in
  let sq = Engine.Session.create Dialect.Sqlite_like in
  Alcotest.(check string) "sqlite concat" "a1"
    (Value.to_display (one_value sq "SELECT 'a' || 1"));
  (* mysql: || is logical OR *)
  let my = Engine.Session.create Dialect.Mysql_like in
  Alcotest.(check string) "mysql || is OR" "1"
    (Value.to_display (one_value my "SELECT 'a' || 1"))

let test_like_case_rules () =
  let fetches dialect sql setup =
    let s = Engine.Session.create dialect in
    script s setup;
    List.length (rows_sql s sql)
  in
  let setup =
    [ "CREATE TABLE t0(c0 TEXT)"; "INSERT INTO t0(c0) VALUES ('AbC')" ]
  in
  Alcotest.(check int) "sqlite LIKE case-insensitive by default" 1
    (fetches Dialect.Sqlite_like "SELECT * FROM t0 WHERE c0 LIKE 'abc'" setup);
  Alcotest.(check int) "mysql LIKE case-insensitive" 1
    (fetches Dialect.Mysql_like "SELECT * FROM t0 WHERE c0 LIKE 'abc'" setup);
  Alcotest.(check int) "postgres LIKE case-sensitive" 0
    (fetches Dialect.Postgres_like "SELECT * FROM t0 WHERE c0 LIKE 'abc'" setup);
  (* pragma flips sqlite *)
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    (setup @ [ "PRAGMA case_sensitive_like = 1" ]);
  Alcotest.(check int) "sqlite pragma case_sensitive_like" 0
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 LIKE 'abc'"))

let test_in_between_null () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s [ "CREATE TABLE t0(c0)"; "INSERT INTO t0(c0) VALUES (5)" ];
  Alcotest.(check int) "IN with null, no match -> NULL (not fetched)" 0
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 IN (1, NULL)"));
  Alcotest.(check int) "NOT IN with null, no match -> NULL (not fetched)" 0
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 NOT IN (1, NULL)"));
  Alcotest.(check int) "BETWEEN with null bound -> NULL" 0
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 BETWEEN NULL AND 10"));
  Alcotest.(check int) "BETWEEN hit" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 BETWEEN 1 AND 10"))

let test_case_expression () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  let one sql =
    match rows_sql s sql with [ [| v |] ] -> Value.to_display v | _ -> "?"
  in
  Alcotest.(check string) "searched case" "yes" (one "SELECT CASE WHEN 1 THEN 'yes' ELSE 'no' END");
  Alcotest.(check string) "operand case" "two"
    (one "SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END");
  Alcotest.(check string) "case falls to null" "NULL"
    (one "SELECT CASE 9 WHEN 1 THEN 'one' END")

(* ---------- DDL edge cases ---------- *)

let test_alter_table () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0, c1)";
      "INSERT INTO t0(c0, c1) VALUES (1, 2)";
      "ALTER TABLE t0 RENAME COLUMN c0 TO first";
      "ALTER TABLE t0 ADD COLUMN c2 INT DEFAULT 9";
    ];
  Alcotest.(check string) "rename + add column with default" "1|2|9"
    (show_rows (rows_sql s "SELECT first, c1, c2 FROM t0"));
  script s [ "ALTER TABLE t0 DROP COLUMN c1" ];
  Alcotest.(check string) "drop column" "1|9"
    (show_rows (rows_sql s "SELECT * FROM t0"));
  script s [ "ALTER TABLE t0 RENAME TO t9" ];
  Alcotest.(check int) "rename table" 1
    (List.length (rows_sql s "SELECT * FROM t9"))

let test_unique_index_on_conflicting_data () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s [ "CREATE TABLE t0(c0)"; "INSERT INTO t0(c0) VALUES (1), (1)" ];
  let e = exec_sql_err s "CREATE UNIQUE INDEX i0 ON t0(c0)" in
  Alcotest.(check bool) "unique violation on create" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Unique_violation);
  (* the failed index must not exist *)
  ignore (exec_sql s "CREATE INDEX i0 ON t0(c0)")

let test_partial_index_maintenance () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0)";
      "CREATE INDEX i0 ON t0(c0) WHERE c0 IS NOT NULL";
      "INSERT INTO t0(c0) VALUES (1), (NULL), (3)";
    ];
  let ix =
    Option.get (Storage.Catalog.find_index (Engine.Session.catalog s) "i0")
  in
  Alcotest.(check int) "partial index holds non-null rows" 2
    (Storage.Index.entry_count ix);
  (* updating NULL -> value adds the row to the partial index *)
  ignore (exec_sql s "UPDATE t0 SET c0 = 5 WHERE c0 IS NULL");
  Alcotest.(check int) "after update" 3 (Storage.Index.entry_count ix);
  ignore (exec_sql s "DELETE FROM t0 WHERE c0 = 5");
  Alcotest.(check int) "after delete" 2 (Storage.Index.entry_count ix)

let test_expression_index_scan () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0 INT)";
      "CREATE INDEX i0 ON t0((c0 + 1))";
      "INSERT INTO t0(c0) VALUES (1), (2), (3)";
    ];
  Alcotest.(check int) "rows survive expression index" 3
    (List.length (rows_sql s "SELECT * FROM t0"))

let test_views_follow_base_table () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0)";
      "INSERT INTO t0(c0) VALUES (1)";
      "CREATE VIEW v0 AS SELECT c0 FROM t0";
      "INSERT INTO t0(c0) VALUES (2)";
    ];
  Alcotest.(check int) "view sees later inserts" 2
    (List.length (rows_sql s "SELECT * FROM v0"));
  let e = exec_sql_err s "INSERT INTO v0(c0) VALUES (3)" in
  Alcotest.(check bool) "views are read-only" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Unsupported)

let test_order_by_collation () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0 TEXT COLLATE NOCASE)";
      "INSERT INTO t0(c0) VALUES ('b'), ('A'), ('a'), ('B')";
    ];
  (* NOCASE ordering: case variants group together *)
  let out =
    rows_sql s "SELECT c0 FROM t0 ORDER BY c0 ASC"
    |> List.map (fun r -> String.lowercase_ascii (Value.to_display r.(0)))
  in
  Alcotest.(check (list string)) "nocase order" [ "a"; "a"; "b"; "b" ] out;
  (* explicit COLLATE BINARY restores byte order: uppercase first *)
  let out2 =
    rows_sql s "SELECT c0 FROM t0 ORDER BY c0 COLLATE BINARY ASC"
    |> List.map (fun r -> Value.to_display r.(0))
  in
  Alcotest.(check (list string)) "binary order" [ "A"; "B"; "a"; "b" ] out2

let test_check_constraints () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0 INT CHECK (c0 <> 13), c1, CHECK (c1 IS NULL OR c1 \
       > 0))";
      "INSERT INTO t0(c0, c1) VALUES (1, 5), (2, NULL)";
    ];
  let e = exec_sql_err s "INSERT INTO t0(c0) VALUES (13)" in
  Alcotest.(check bool) "column check enforced" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Check_violation);
  let e2 = exec_sql_err s "UPDATE t0 SET c1 = -1 WHERE c0 = 1" in
  Alcotest.(check bool) "table check enforced on update" true
    (Engine.Errors.equal_code e2.Engine.Errors.code Engine.Errors.Check_violation);
  (* NULL passes a check *)
  ignore (exec_sql s "INSERT INTO t0(c0, c1) VALUES (NULL, NULL)");
  (* OR IGNORE skips violating rows *)
  ignore (exec_sql s "INSERT OR IGNORE INTO t0(c0) VALUES (13), (14)");
  Alcotest.(check int) "ignore skipped the bad row" 4
    (List.length (rows_sql s "SELECT * FROM t0"));
  (* the sqlite pragma disables enforcement *)
  script s [ "PRAGMA ignore_check_constraints = 1" ];
  ignore (exec_sql s "INSERT INTO t0(c0) VALUES (13)");
  Alcotest.(check int) "pragma disables checks" 5
    (List.length (rows_sql s "SELECT * FROM t0"))

let test_subqueries () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0, c1)";
      "INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c')";
    ];
  Alcotest.(check int) "derived table filters" 1
    (List.length
       (rows_sql s
          "SELECT * FROM (SELECT c0, c1 FROM t0 WHERE c0 > 1) AS s WHERE \
           s.c0 < 3"));
  (* aliasing: the subquery name is the binding *)
  Alcotest.(check string) "projection through subquery" "b"
    (match rows_sql s "SELECT s.c1 FROM (SELECT c1 FROM t0 WHERE c0 = 2) AS s" with
    | [ [| v |] ] -> Value.to_display v
    | _ -> "?");
  (* subqueries join with tables *)
  Alcotest.(check int) "subquery x table cross product" 9
    (List.length (rows_sql s "SELECT * FROM (SELECT c0 FROM t0) AS s, t0"))

let test_explain () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0)";
      "CREATE INDEX i0 ON t0(c0)";
      "INSERT INTO t0(c0) VALUES (1)";
    ];
  let plan_of sql =
    rows_sql s sql
    |> List.map (fun r -> Value.to_display r.(0))
    |> String.concat "\n"
  in
  let p = plan_of "EXPLAIN SELECT * FROM t0 WHERE c0 = 1" in
  Alcotest.(check bool) "index probe visible" true
    (String.length p > 0
    &&
    let re = "index-eq" in
    let rec contains i =
      i + String.length re <= String.length p
      && (String.sub p i (String.length re) = re || contains (i + 1))
    in
    contains 0);
  let p2 = plan_of "EXPLAIN SELECT DISTINCT * FROM t0 ORDER BY c0 ASC" in
  Alcotest.(check bool) "stages listed" true
    (String.length p2 > 0)

(* ---------- maintenance ---------- *)

let test_vacuum_reindex_analyze () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0)";
      "CREATE INDEX i0 ON t0(c0)";
      "INSERT INTO t0(c0) VALUES (2), (1), (3)";
      "DELETE FROM t0 WHERE c0 = 1";
      "VACUUM";
      "REINDEX";
      "ANALYZE";
    ];
  Alcotest.(check int) "rows preserved across maintenance" 2
    (List.length (rows_sql s "SELECT * FROM t0"));
  Alcotest.(check int) "index probe still works" 1
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 = 2"))

let test_mysql_check_repair () =
  let s = Engine.Session.create Dialect.Mysql_like in
  script s
    [
      "CREATE TABLE t0(c0 INT)";
      "INSERT INTO t0(c0) VALUES (1)";
      "CHECK TABLE t0";
      "REPAIR TABLE t0";
    ];
  (* dialect gates *)
  let sq = Engine.Session.create Dialect.Sqlite_like in
  script sq [ "CREATE TABLE t0(c0)" ];
  let e = exec_sql_err sq "CHECK TABLE t0" in
  Alcotest.(check bool) "check table is mysql-only" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Syntax_error)

let test_pg_statistics () =
  let s = Engine.Session.create Dialect.Postgres_like in
  script s
    [
      "CREATE TABLE t0(c0 INT, c1 INT)";
      "CREATE STATISTICS s1 ON c0, c1 FROM t0";
      "ANALYZE";
      "DISCARD ALL";
    ];
  let e = exec_sql_err s "CREATE STATISTICS s1 ON c0, c1 FROM t0" in
  Alcotest.(check bool) "duplicate statistics" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Object_exists)

let test_corruption_gates_statements () =
  let bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_vacuum_partial_index_corrupt ] in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0)";
      "CREATE INDEX i0 ON t0(c0) WHERE c0 IS NOT NULL";
      "INSERT INTO t0(c0) VALUES (1)";
    ];
  let e = exec_sql_err s "VACUUM" in
  Alcotest.(check bool) "vacuum corrupts" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Malformed_database);
  (* every subsequent data statement reports the corruption *)
  let e2 = exec_sql_err s "SELECT * FROM t0" in
  Alcotest.(check bool) "select gated" true
    (Engine.Errors.equal_code e2.Engine.Errors.code Engine.Errors.Malformed_database);
  let e3 = exec_sql_err s "INSERT INTO t0(c0) VALUES (2)" in
  Alcotest.(check bool) "insert gated" true
    (Engine.Errors.equal_code e3.Engine.Errors.code Engine.Errors.Malformed_database)

let test_serial_autoincrement () =
  let s = Engine.Session.create Dialect.Postgres_like in
  script s
    [
      "CREATE TABLE t0(c0 SERIAL, c1 INT)";
      "INSERT INTO t0(c1) VALUES (10), (20)";
      "INSERT INTO t0(c1) VALUES (30)";
    ];
  Alcotest.(check string) "serial assigns 1,2,3" "1|10;2|20;3|30"
    (show_rows (rows_sql s "SELECT c0, c1 FROM t0 ORDER BY c0 ASC"))

let test_rowid_alias () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  script s
    [
      "CREATE TABLE t0(c0 INTEGER PRIMARY KEY, c1)";
      "INSERT INTO t0(c0, c1) VALUES (NULL, 'a'), (NULL, 'b')";
    ];
  (* NULL INTEGER PRIMARY KEY auto-assigns the rowid *)
  Alcotest.(check int) "no null pks stored" 0
    (List.length (rows_sql s "SELECT * FROM t0 WHERE c0 IS NULL"));
  Alcotest.(check int) "two rows" 2 (List.length (rows_sql s "SELECT * FROM t0"))

(* ---------- property: index paths agree with full scans ---------- *)

let planner_soundness_prop dialect =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "index scan = full scan (%s)" (Dialect.name dialect))
    ~count:150 QCheck.small_nat
    (fun seed ->
      let rng = Pqs.Rng.make ~seed:(seed + 500) in
      let session = Engine.Session.create dialect in
      let cfg =
        Pqs.Gen_db.Config.(make dialect |> with_rng rng)
      in
      List.iter
        (fun st -> ignore (Engine.Session.execute session st))
        (Pqs.Gen_db.initial_statements cfg);
      List.iter
        (fun st -> ignore (Engine.Session.execute session st))
        (Pqs.Gen_db.fill_statements cfg session);
      (* a couple of random indexes *)
      for _ = 1 to 3 do
        List.iter
          (fun st -> ignore (Engine.Session.execute session st))
          (Pqs.Gen_db.random_statements cfg session)
      done;
      let tables = Pqs.Schema_info.tables_of_session session in
      match tables with
      | [] -> true
      | ti :: _ ->
          let pool =
            Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name
            |> List.concat_map Array.to_list
            |> List.filter (fun v -> not (Value.is_null v))
          in
          let cond =
            Pqs.Gen_expr.simple_predicate
              { Pqs.Gen_expr.rng; dialect; tables = [ ti ]; max_depth = 2; pool }
          in
          let q distinct =
            A.Q_select
              {
                A.sel_distinct = distinct;
                sel_items = [ A.Star ];
                sel_from =
                  [ A.F_table { name = ti.Pqs.Schema_info.ti_name; alias = None } ];
                sel_where = Some cond;
                sel_group_by = [];
                sel_having = None;
                sel_order_by = [];
                sel_limit = None;
                sel_offset = None;
              }
          in
          (* compare against the same query with every index dropped *)
          let run query =
            match Engine.Session.query session query with
            | Ok rs ->
                Some
                  (List.sort compare
                     (List.map
                        (fun r ->
                          String.concat "|"
                            (Array.to_list (Array.map Value.show r)))
                        rs.Engine.Executor.rs_rows))
            | Error _ -> None
          in
          let with_indexes = run (q false) in
          let catalog = Engine.Session.catalog session in
          let saved = catalog.Storage.Catalog.indexes in
          catalog.Storage.Catalog.indexes <- [];
          let without_indexes = run (q false) in
          catalog.Storage.Catalog.indexes <- saved;
          if with_indexes <> without_indexes then
            QCheck.Test.fail_reportf
              "index path diverges on %s\n  with: %s\n  without: %s"
              (Sqlast.Sql_printer.expr dialect cond)
              (match with_indexes with
              | Some r -> String.concat ";" r
              | None -> "<error>")
              (match without_indexes with
              | Some r -> String.concat ";" r
              | None -> "<error>")
          else true)

let () =
  Alcotest.run "engine-more"
    [
      ( "expressions",
        [
          Alcotest.test_case "three-valued WHERE" `Quick test_three_valued_where;
          Alcotest.test_case "sqlite affinity compare" `Quick test_sqlite_affinity_compare;
          Alcotest.test_case "division semantics" `Quick test_division_semantics;
          Alcotest.test_case "concat semantics" `Quick test_concat_semantics;
          Alcotest.test_case "LIKE case rules" `Quick test_like_case_rules;
          Alcotest.test_case "IN/BETWEEN with NULL" `Quick test_in_between_null;
          Alcotest.test_case "CASE expression" `Quick test_case_expression;
          Alcotest.test_case "CHECK constraints" `Quick test_check_constraints;
          Alcotest.test_case "ORDER BY collation" `Quick test_order_by_collation;
        ] );
      ( "ddl",
        [
          Alcotest.test_case "alter table" `Quick test_alter_table;
          Alcotest.test_case "unique index on conflicting data" `Quick
            test_unique_index_on_conflicting_data;
          Alcotest.test_case "partial index maintenance" `Quick
            test_partial_index_maintenance;
          Alcotest.test_case "expression index scan" `Quick test_expression_index_scan;
          Alcotest.test_case "views" `Quick test_views_follow_base_table;
          Alcotest.test_case "serial" `Quick test_serial_autoincrement;
          Alcotest.test_case "rowid alias" `Quick test_rowid_alias;
          Alcotest.test_case "subqueries in FROM" `Quick test_subqueries;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "vacuum/reindex/analyze" `Quick
            test_vacuum_reindex_analyze;
          Alcotest.test_case "mysql check/repair" `Quick test_mysql_check_repair;
          Alcotest.test_case "pg statistics" `Quick test_pg_statistics;
          Alcotest.test_case "corruption gates" `Quick test_corruption_gates_statements;
        ] );
      ( "planner-soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            planner_soundness_prop Dialect.Sqlite_like;
            planner_soundness_prop Dialect.Mysql_like;
            planner_soundness_prop Dialect.Postgres_like;
          ] );
    ]
