(* The abstract-interpretation layer and the const-opt oracle:

   - const_fold: evaluator-backed folding resolves pivot bindings
     (case-insensitively, ambiguity fails the fold), and the
     metadata-free / substitutability checks answer the static questions
     the simplifier gates rewrites on;
   - simplify goldens: the rewriter leaves exactly the operand shapes a
     broken engine constant folder mishandles (a NULL literal under AND /
     NOT, substituted literal comparisons), prunes dead CASE branches,
     and records a provenance trail;
   - interval: unsatisfiable conjunctions and out-of-declared-interval
     comparisons produce the new warning diagnostics;
   - soundness: a 1,000-seed sweep over generated databases finds zero
     divergences on the correct engine, under the interpreter AND the
     compiled backend, and both backends produce the identical sweep
     record;
   - detection: each injected constant-folding bug diverges on a bounded
     sweep; the oracle reports it with the rewrite trail; the repro
     bundle round-trips through [Trace.Bundle] and [Replay.check_file];
   - plumbing: oracle token round-trip, registry entry, stats counters
     merge additively. *)

open Sqlval
module A = Sqlast.Ast
module CF = Analysis.Const_fold
module Simplify = Analysis.Simplify
module Interval = Analysis.Interval
module Diagnostic = Analysis.Diagnostic

(* ---------- helpers ---------- *)

let parse_sql sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok s -> s
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e)

let where_of sql =
  match parse_sql ("SELECT * FROM t0 WHERE " ^ sql) with
  | A.Select_stmt (A.Q_select { A.sel_where = Some w; _ }) -> w
  | _ -> Alcotest.fail ("no WHERE parsed from " ^ sql)

let print_expr e = Sqlast.Sql_printer.expr Dialect.Sqlite_like e

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Trace.mkdir_p path;
  path

let contains_sub sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

let binding ?(table = "t0") ?(ty = Datatype.Any)
    ?(coll = Collation.Binary) name v =
  { CF.b_table = table; b_column = name; b_value = v; b_type = ty;
    b_collation = coll }

(* pivot env: t0.c0 = 7, t0.c1 = 'abc' *)
let pivot_env () =
  CF.env Dialect.Sqlite_like
    [ binding "c0" (Value.Int 7L); binding "c1" (Value.Text "abc") ]

(* ---------- const_fold ---------- *)

let test_fold_basics () =
  let env = pivot_env () in
  Alcotest.(check bool) "column resolves" true
    (CF.fold env (A.col "c0") = Some (Value.Int 7L));
  Alcotest.(check bool) "qualified column resolves case-insensitively" true
    (CF.fold env (A.Col { table = Some "T0"; column = "C1" })
    = Some (Value.Text "abc"));
  Alcotest.(check bool) "arith folds through the evaluator" true
    (CF.fold env (where_of "c0 + 1 = 8") <> None);
  Alcotest.(check bool) "unknown column fails the fold" true
    (CF.fold env (A.col "nope") = None);
  let amb =
    CF.env Dialect.Sqlite_like
      [ binding ~table:"a" "c" (Value.Int 1L);
        binding ~table:"b" "c" (Value.Int 2L) ]
  in
  Alcotest.(check bool) "ambiguous unqualified reference fails" true
    (CF.fold amb (A.col "c") = None);
  Alcotest.(check bool) "qualification disambiguates" true
    (CF.fold amb (A.Col { table = Some "b"; column = "c" })
    = Some (Value.Int 2L));
  Alcotest.(check bool) "const_env folds literals only" true
    (CF.fold (CF.const_env Dialect.Sqlite_like) (where_of "1 + 1 = 2")
    <> None)

let test_metadata_free () =
  let env = pivot_env () in
  List.iter
    (fun (sql, expected) ->
      Alcotest.(check bool) (sql ^ " metadata-free") expected
        (CF.metadata_free env (where_of sql)))
    [
      ("c0", false);
      ("CAST(c0 AS TEXT)", false);
      ("c0 COLLATE NOCASE", false);
      ("+c0", false);
      ("c0 + 1", true);
      ("abs(c0)", true);
      ("1", true);
    ]

(* ---------- simplify goldens ---------- *)

let rules r =
  List.map (fun (rw : Simplify.rewrite) -> rw.Simplify.rw_rule)
    r.Simplify.res_trail

(* probe A: the NULL-under-AND residue a broken folder mishandles *)
let test_simplify_null_under_and () =
  let env = pivot_env () in
  let r = Simplify.simplify env (where_of "NOT ((c0 = NULL) AND (1 = 2))") in
  Alcotest.(check bool) "comparison with NULL folds to the NULL literal" true
    (A.equal_expr r.Simplify.res_expr
       (A.Unary
          ( A.Not,
            A.Binary
              ( A.And,
                A.Lit Value.Null,
                A.Binary
                  (A.Eq, A.Lit (Value.Int 1L), A.Lit (Value.Int 2L)) ) )));
  Alcotest.(check (list string)) "trail" [ "fold-null-cmp" ] (rules r)

let test_simplify_substitution () =
  let env = pivot_env () in
  let r = Simplify.simplify env (where_of "c0 > 5") in
  Alcotest.(check string) "both operands substituted"
    (print_expr (A.Binary (A.Gt, A.Lit (Value.Int 7L), A.Lit (Value.Int 5L))))
    (print_expr r.Simplify.res_expr);
  Alcotest.(check (list string)) "trail" [ "subst-cmp" ] (rules r);
  (* a constant comparison is already in simplified form: the engine's
     own folder must still see it *)
  let r = Simplify.simplify env (where_of "1 = 2") in
  Alcotest.(check (list string)) "no rewrite on a literal comparison" []
    (rules r)

let test_simplify_prune_and_or () =
  let env = pivot_env () in
  let r = Simplify.simplify env (where_of "0 AND (c0 = NULL)") in
  Alcotest.(check bool) "FALSE AND x prunes to FALSE" true
    (A.equal_expr r.Simplify.res_expr (A.Lit (Value.Int 0L)));
  let r = Simplify.simplify env (where_of "1 AND (c0 = NULL)") in
  Alcotest.(check bool) "TRUE AND x prunes to x in boolean context" true
    (A.equal_expr r.Simplify.res_expr (A.Lit Value.Null));
  Alcotest.(check (list string)) "prune trail records both steps"
    [ "fold-null-cmp"; "prune-and-true" ]
    (List.sort String.compare (rules r));
  let r = Simplify.simplify env (where_of "1 OR (c0 = NULL)") in
  Alcotest.(check bool) "TRUE OR x prunes to TRUE" true
    (A.equal_expr r.Simplify.res_expr (A.Lit (Value.Int 1L)))

let test_simplify_case () =
  let env = pivot_env () in
  let r =
    Simplify.simplify env
      (where_of "CASE WHEN 1 = 2 THEN c0 WHEN c0 = 7 THEN 1 ELSE 0 END")
  in
  (* first branch is dead (constant false cond), second folds true on the
     pivot binding and truncates into the else position *)
  Alcotest.(check bool) "dead branch pruned, taken branch truncates" true
    (A.equal_expr r.Simplify.res_expr (A.Lit (Value.Int 1L)));
  Alcotest.(check bool) "dead-case-branch diagnostic emitted" true
    (List.exists
       (fun d ->
         Diagnostic.equal_code d.Diagnostic.code Diagnostic.Dead_case_branch)
       r.Simplify.res_diags)

let test_simplify_skeleton_preserved () =
  let env = pivot_env () in
  (* IS / NOT skeletons survive: they are the rectifier's decoration and
     the engine folder's work surface *)
  let r = Simplify.simplify env (where_of "(NOT (c0 = NULL)) IS NULL") in
  Alcotest.(check bool) "IS NULL skeleton kept over NOT NULL" true
    (A.equal_expr r.Simplify.res_expr
       (A.Is
          {
            negated = false;
            arg = A.Unary (A.Not, A.Lit Value.Null);
            rhs = A.Is_null;
          }))

let test_where_diagnostics () =
  let env = CF.const_env Dialect.Sqlite_like in
  let always = Simplify.where_diagnostics env (where_of "1 = 1") in
  Alcotest.(check bool) "tautology flagged" true
    (List.exists
       (fun d -> Diagnostic.equal_code d.Diagnostic.code Diagnostic.Always_true)
       always);
  Alcotest.(check bool) "always-true renders with its slug" true
    (List.exists
       (fun d -> contains_sub "warning[always-true]" (Diagnostic.to_string d))
       always);
  Alcotest.(check (list string)) "column predicates stay silent" []
    (List.map Diagnostic.to_string
       (Simplify.where_diagnostics env (where_of "c0 > 5")))

(* ---------- interval ---------- *)

let pg_table =
  {
    Analysis.Typecheck.tab_name = "t";
    tab_columns =
      [
        {
          Analysis.Typecheck.col_name = "c";
          col_type = Datatype.Int { width = Datatype.Tiny; unsigned = false };
          col_collation = Collation.Binary;
          col_nullability = Analysis.Nullability.Not_null;
        };
      ];
  }

let test_interval_unsat () =
  let t = Interval.of_tables Dialect.Postgres_like [ pg_table ] in
  let diags = Interval.check_where t (where_of "c > 5 AND c < 3") in
  Alcotest.(check bool) "contradictory range flagged" true
    (List.exists
       (fun d ->
         Diagnostic.equal_code d.Diagnostic.code Diagnostic.Unsat_predicate)
       diags);
  Alcotest.(check (list string)) "satisfiable range stays silent" []
    (List.map Diagnostic.to_string
       (Interval.check_where t (where_of "c > 3 AND c < 5")))

let test_interval_bounds () =
  let t = Interval.of_tables Dialect.Postgres_like [ pg_table ] in
  (* TINYINT is [-128, 127] under the static dialects *)
  let diags = Interval.check_bounds t (where_of "c > 1000") in
  Alcotest.(check bool) "out-of-declared-interval comparison flagged" true
    (List.exists
       (fun d ->
         Diagnostic.equal_code d.Diagnostic.code Diagnostic.Out_of_interval)
       diags);
  Alcotest.(check (list string)) "in-range comparison stays silent" []
    (List.map Diagnostic.to_string (Interval.check_bounds t (where_of "c > 100")));
  (* sqlite columns are dynamically typed: no declared interval to trust *)
  let t = Interval.of_tables Dialect.Sqlite_like [ pg_table ] in
  Alcotest.(check (list string)) "sqlite seeds top" []
    (List.map Diagnostic.to_string (Interval.check_bounds t (where_of "c > 1000")))

(* ---------- the oracle on a fixture ---------- *)

let fold_where = "NOT ((c0 = NULL) AND (1 = 2))"

let repro_script =
  [
    "CREATE TABLE t0(c0 INT, c1 TEXT)";
    "INSERT INTO t0(c0, c1) VALUES (1,'a'), (2,'b')";
    Printf.sprintf "SELECT * FROM t0 WHERE %s" fold_where;
  ]

let fixture_session ?(bugs = Engine.Bug.empty_set) () =
  let session = Engine.Session.create ~bugs Dialect.Sqlite_like in
  List.iter
    (fun sql -> ignore (Engine.Session.execute session (parse_sql sql)))
    repro_script;
  session

let fixture_pivot session =
  match Pqs.Schema_info.tables_of_session session with
  | ti :: _ -> [ (ti, [| Value.Int 1L; Value.Text "a" |]) ]
  | [] -> Alcotest.fail "fixture has no table"

let fixture_check session =
  let pivot = fixture_pivot session in
  let ti, row = List.hd pivot in
  ( pivot,
    A.Q_compound
          ( A.Intersect,
            A.Q_values [ List.map (fun v -> A.Lit v) (Array.to_list row) ],
            A.Q_select
              {
                A.sel_distinct = false;
                sel_items = [ A.Star ];
                sel_from =
                  [ A.F_table { name = ti.Pqs.Schema_info.ti_name; alias = None } ];
                sel_where = Some (where_of fold_where);
                sel_group_by = [];
                sel_having = None;
                sel_order_by = [];
                sel_limit = None;
                sel_offset = None;
              } ) )

let fold_bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_fold_null_and ]

let test_fixture_sound () =
  let session = fixture_session () in
  let pivot, q = fixture_check session in
  (match Pqs.Const_opt.simplified_stmt session ~pivot q with
  | None -> Alcotest.fail "no rewrite applied on the fixture"
  | Some (_, r) ->
      Alcotest.(check (list string)) "trail" [ "fold-null-cmp" ] (rules r));
  Alcotest.(check bool) "no divergence on the correct engine" false
    (Pqs.Const_opt.reproduce session ~pivot q)

let test_fixture_detects () =
  let session = fixture_session ~bugs:fold_bugs () in
  let pivot, q = fixture_check session in
  Alcotest.(check bool) "NULL-under-AND fold bug diverges" true
    (Pqs.Const_opt.reproduce session ~pivot q)

let observe ?(bugs = Engine.Bug.empty_set) () =
  let session = fixture_session ~bugs () in
  let pivot, q = fixture_check session in
  let ctx =
    {
      Pqs.Oracle.ctx_dialect = Dialect.Sqlite_like;
      ctx_session = session;
      ctx_db_seed = 7;
      ctx_rng = Pqs.Rng.make ~seed:7;
      ctx_telemetry = Telemetry.noop;
    }
  in
  Pqs.Oracle.observe
    (* stride 1: the fixture is a single directed check, not a sample *)
    (Pqs.Const_opt.oracle ~sample_every:1 ())
    ctx
    (Pqs.Oracle.Containment_check
       {
         Pqs.Oracle.check_stmt = A.Select_stmt q;
         negative = false;
         pivot_found = true;
         check_pivot = pivot;
       })

let test_oracle_verdicts () =
  (match observe () with
  | Pqs.Oracle.Pass -> ()
  | Pqs.Oracle.Report { message; _ } ->
      Alcotest.fail ("spurious report: " ^ message));
  match observe ~bugs:fold_bugs () with
  | Pqs.Oracle.Pass -> Alcotest.fail "oracle missed the fold bug"
  | Pqs.Oracle.Report { kind; message } ->
      Alcotest.(check bool) "reports as Const_opt" true
        (kind = Pqs.Bug_report.Const_opt);
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("message carries " ^ sub) true
            (contains_sub sub message))
        [ "constant-optimization divergence"; "fold-null-cmp"; "INTERSECT" ]

(* ---------- soundness sweeps ---------- *)

let test_soundness_sweep_interpreted () =
  let r = Pqs.Const_opt.sweep ~seed_lo:1 ~seed_hi:1000 Dialect.Sqlite_like in
  Alcotest.(check int) "seeds swept" 1000 r.Pqs.Const_opt.co_seeds;
  Alcotest.(check bool) "checks simplified and re-ran" true
    (r.Pqs.Const_opt.co_checks > 200);
  Alcotest.(check bool) "rewrites applied" true
    (r.Pqs.Const_opt.co_rewrites > r.Pqs.Const_opt.co_checks);
  Alcotest.(check (list (pair int string)))
    "no divergence on the correct engine" []
    r.Pqs.Const_opt.co_divergences

let test_soundness_sweep_compiled () =
  let r =
    Pqs.Const_opt.sweep ~backend:Engine.Exec_backend.Compiled ~seed_lo:1
      ~seed_hi:1000 Dialect.Sqlite_like
  in
  Alcotest.(check (list (pair int string)))
    "no divergence under the compiled backend" []
    r.Pqs.Const_opt.co_divergences

let test_sweep_backend_parity () =
  (* both backends must see the identical sweep record: same checks, same
     rewrites, same (empty) divergences *)
  let run backend =
    Pqs.Const_opt.sweep ~backend ~seed_lo:1 ~seed_hi:200 Dialect.Sqlite_like
  in
  Alcotest.(check bool) "interpreted = compiled" true
    (run Engine.Exec_backend.Interpreted = run Engine.Exec_backend.Compiled)

let test_sweep_other_dialects () =
  List.iter
    (fun dialect ->
      let r = Pqs.Const_opt.sweep ~seed_lo:1 ~seed_hi:300 dialect in
      Alcotest.(check (list (pair int string)))
        (Dialect.show dialect ^ " sweep is clean")
        [] r.Pqs.Const_opt.co_divergences)
    [ Dialect.Mysql_like; Dialect.Postgres_like ]

let test_sweep_deterministic () =
  let run () =
    Pqs.Const_opt.sweep ~seed_lo:1 ~seed_hi:40 Dialect.Sqlite_like
  in
  Alcotest.(check bool) "two identical sweeps" true (run () = run ())

(* ---------- detection ---------- *)

let test_detects bug () =
  let r =
    Pqs.Const_opt.sweep
      ~bugs:(Engine.Bug.set_of_list [ bug ])
      ~seed_lo:1 ~seed_hi:300 Dialect.Sqlite_like
  in
  Alcotest.(check bool)
    (Engine.Bug.show bug ^ " diverges on the sweep")
    true
    (r.Pqs.Const_opt.co_divergences <> [])

(* ---------- plumbing: token, bundle, reducer, stats ---------- *)

let test_oracle_token () =
  Alcotest.(check string) "token" "const_opt"
    (Pqs.Bug_report.oracle_token Pqs.Bug_report.Const_opt);
  Alcotest.(check bool) "token round-trips" true
    (Pqs.Bug_report.oracle_of_token "const_opt" = Some Pqs.Bug_report.Const_opt);
  match Pqs.Oracle.Registry.find "const_opt" with
  | None -> Alcotest.fail "const_opt not registered"
  | Some e ->
      Alcotest.(check (option string)) "flag" (Some "const-opt")
        e.Pqs.Oracle.Registry.reg_flag;
      Alcotest.(check bool) "not a default oracle" false
        e.Pqs.Oracle.Registry.reg_default

let divergence_message () =
  let session = fixture_session ~bugs:fold_bugs () in
  let pivot, q = fixture_check session in
  match Pqs.Const_opt.simplified_stmt session ~pivot q with
  | None -> Alcotest.fail "no simplified variant"
  | Some (q', r) -> Pqs.Const_opt.message session q' r

let test_bundle_replay () =
  let msg = divergence_message () in
  let recorder = Trace.create ~capacity:4 () in
  Trace.begin_round recorder ~seed:7 ~dialect:Dialect.Sqlite_like;
  let bundle =
    {
      Trace.Bundle.b_seed = 7;
      b_dialect = Dialect.Sqlite_like;
      b_oracle = Pqs.Bug_report.oracle_token Pqs.Bug_report.Const_opt;
      b_message = msg;
      b_phase = "containment";
      b_bugs = [ Engine.Bug.show Engine.Bug.Sq_fold_null_and ];
      b_statements =
        (match fixture_check (fixture_session ()) with
        | _, q ->
            List.map parse_sql
              (List.filter
                 (fun s -> not (contains_sub "SELECT" s))
                 repro_script)
            @ [ A.Select_stmt q ]);
      b_expected = Some "nonempty";
      b_actual = Some "empty";
      b_plan = [];
      b_trace_json = Trace.to_json recorder;
    }
  in
  Alcotest.(check string) "bundle directory naming" "bundle-000007-const_opt"
    (Trace.Bundle.dir_name bundle);
  let dir = fresh_dir "pqs_constopt_bundle" in
  let sql_path = Trace.Bundle.write ~dir bundle in
  let headers, _ = Trace.Bundle.parse_script_text (read_file sql_path) in
  Alcotest.(check (option string)) "oracle header" (Some "const_opt")
    (List.assoc_opt "oracle" headers);
  match Pqs.Replay.check_file sql_path with
  | Error e -> Alcotest.fail ("broken bundle: " ^ e)
  | Ok o ->
      Alcotest.(check bool) "const_opt bundles are recheckable" true
        o.Pqs.Replay.recheckable;
      Alcotest.(check bool) "replay reproduces the divergence" true
        o.Pqs.Replay.reproduced

let test_reducer () =
  let _, q = fixture_check (fixture_session ()) in
  let statements =
    List.map parse_sql
      (List.filter (fun s -> not (contains_sub "SELECT" s)) repro_script)
    @ [ A.Select_stmt q ]
  in
  let report =
    {
      Pqs.Bug_report.dialect = Dialect.Sqlite_like;
      oracle = Pqs.Bug_report.Const_opt;
      message = "constant-optimization divergence";
      statements;
      reduced = None;
      seed = 7;
      phase = "containment";
      bundle = None;
    }
  in
  match
    (Pqs.Reducer.reduce_report report ~bugs:fold_bugs).Pqs.Bug_report.reduced
  with
  | None -> Alcotest.fail "reduction produced nothing"
  | Some reduced -> (
      match List.rev reduced with
      | A.Select_stmt _ :: _ ->
          Alcotest.(check bool) "reduced script still present" true
            (List.length reduced >= 2)
      | _ -> Alcotest.fail "detecting SELECT not kept last")

let test_stats_merge () =
  let a =
    { Pqs.Stats.empty with Pqs.Stats.const_checks = 3; const_divergences = 1 }
  and b =
    { Pqs.Stats.empty with Pqs.Stats.const_checks = 4; const_divergences = 2 }
  in
  let m = Pqs.Stats.merge a b in
  Alcotest.(check int) "const_checks add" 7 m.Pqs.Stats.const_checks;
  Alcotest.(check int) "const_divergences add" 3 m.Pqs.Stats.const_divergences;
  Alcotest.(check bool) "summary renders the counters" true
    (contains_sub "const-checks=7" (Pqs.Stats.summary m))

(* ---------- suite ---------- *)

let () =
  Alcotest.run "const_opt"
    [
      ( "const_fold",
        [
          Alcotest.test_case "fold basics" `Quick test_fold_basics;
          Alcotest.test_case "metadata-free" `Quick test_metadata_free;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "NULL under AND" `Quick
            test_simplify_null_under_and;
          Alcotest.test_case "operand substitution" `Quick
            test_simplify_substitution;
          Alcotest.test_case "AND/OR pruning" `Quick test_simplify_prune_and_or;
          Alcotest.test_case "CASE pruning" `Quick test_simplify_case;
          Alcotest.test_case "skeleton preservation" `Quick
            test_simplify_skeleton_preserved;
          Alcotest.test_case "where diagnostics" `Quick test_where_diagnostics;
        ] );
      ( "interval",
        [
          Alcotest.test_case "unsatisfiable conjunction" `Quick
            test_interval_unsat;
          Alcotest.test_case "declared bounds" `Quick test_interval_bounds;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "sound on the fixture" `Quick test_fixture_sound;
          Alcotest.test_case "detects on the fixture" `Quick
            test_fixture_detects;
          Alcotest.test_case "verdicts" `Quick test_oracle_verdicts;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "1,000-seed sweep (interpreter)" `Quick
            test_soundness_sweep_interpreted;
          Alcotest.test_case "1,000-seed sweep (compiled)" `Quick
            test_soundness_sweep_compiled;
          Alcotest.test_case "backend parity" `Quick test_sweep_backend_parity;
          Alcotest.test_case "mysql/pg sweeps" `Quick test_sweep_other_dialects;
          Alcotest.test_case "sweep is deterministic" `Quick
            test_sweep_deterministic;
        ] );
      ( "detection",
        [
          Alcotest.test_case "NULL-under-AND fold" `Quick
            (test_detects Engine.Bug.Sq_fold_null_and);
          Alcotest.test_case "affinity re-derivation" `Quick
            (test_detects Engine.Bug.Sq_fold_affinity_cmp);
          Alcotest.test_case "NOT-NULL fold" `Quick
            (test_detects Engine.Bug.Sq_fold_not_null_true);
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "oracle token and registry" `Quick
            test_oracle_token;
          Alcotest.test_case "repro bundle replays" `Quick test_bundle_replay;
          Alcotest.test_case "reducer keeps the witness" `Quick test_reducer;
          Alcotest.test_case "stats counters merge" `Quick test_stats_merge;
        ] );
    ]
