(* Smoke tests for the evaluation harness: each experiment target runs at a
   tiny budget without raising, and the table-shape invariants hold on the
   detection outcomes it is fed. *)

let tiny_detections () =
  (* a synthetic detection list: one detected true bug per dialect, one
     undetected *)
  let mk bug report = { Experiments.Detection.bug; report; queries_budget = 1 } in
  let report dialect oracle =
    Some
      {
        Pqs.Bug_report.dialect;
        oracle;
        message = "synthetic";
        statements =
          [
            Sqlast.Ast.Create_table
              {
                Sqlast.Ast.ct_name = "t0";
                ct_if_not_exists = false;
                ct_columns =
                  [
                    {
                      Sqlast.Ast.col_name = "c0";
                      col_type = Sqlval.Datatype.Any;
                      col_collate = None;
                      col_constraints = [];
                    };
                  ];
                ct_constraints = [];
                ct_without_rowid = false;
                ct_engine = None;
                ct_inherits = None;
              };
            Sqlast.Ast.Select_stmt (Sqlast.Ast.Q_values [ [ Sqlast.Ast.int_lit 1L ] ]);
          ];
        reduced = None;
        seed = 1;
        phase = "containment";
        bundle = None;
      }
  in
  [
    mk Engine.Bug.Sq_rtrim_compare_asymmetric
      (report Sqlval.Dialect.Sqlite_like Pqs.Bug_report.Containment);
    mk Engine.Bug.My_repair_marks_crashed
      (report Sqlval.Dialect.Mysql_like Pqs.Bug_report.Error_oracle);
    mk Engine.Bug.Pg_stats_analyze_crash
      (report Sqlval.Dialect.Postgres_like Pqs.Bug_report.Crash);
    mk Engine.Bug.Sq_skip_scan_distinct None;
  ]

let test_detection_helpers () =
  let det = tiny_detections () in
  Alcotest.(check int) "detected" 3
    (List.length (Experiments.Detection.detected det));
  Alcotest.(check int) "missed" 1 (List.length (Experiments.Detection.missed det));
  Alcotest.(check int) "sqlite outcomes" 2
    (List.length (Experiments.Detection.by_dialect det Sqlval.Dialect.Sqlite_like))

let test_tables_run () =
  let det = tiny_detections () in
  Experiments.Table1.run ();
  Experiments.Table2.run det;
  Experiments.Table3.run det;
  Experiments.Table4.run ~coverage_queries:60 ();
  let det = Experiments.Figure2.run det in
  ignore (Experiments.Figure3.run det)

let test_perf_and_ablations_run () =
  Experiments.Throughput.run ~queries:80 ();
  Experiments.Ablations.run ~queries:60 ();
  Experiments.Metamorphic_ext.run ~checks:40 ()

let test_fmt_table () =
  let rendered =
    Experiments.Fmt_table.render ~columns:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has separator" true (String.contains rendered '-');
  Alcotest.(check bool) "pads columns" true
    (String.length rendered > String.length "a|bb")

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "detection helpers" `Quick test_detection_helpers;
          Alcotest.test_case "tables and figures run" `Quick test_tables_run;
          Alcotest.test_case "perf/ablations run" `Slow test_perf_and_ablations_run;
          Alcotest.test_case "fmt_table" `Quick test_fmt_table;
        ] );
    ]
