(* The static analyzer's contracts (lib/analysis + the lint oracle):

   - golden diagnostics: hand-written ill-typed SQL, fed through the real
     parser, produces exactly the expected structured diagnostics;
   - acceptance: a 1,000-seed Gen_query sweep across the three dialects
     is diagnostic-free — the generators are well-typed by construction,
     so any diagnostic is an analyzer (or generator) defect;
   - soundness: the 3VL nullability the analyzer infers for a rectified
     WHERE clause is consistent with the oracle interpreter's concrete
     evaluation on the pivot row, and a rectified predicate is never
     statically DEFINITELY NULL;
   - neutrality: a campaign with the lint oracle reports the identical
     bug set as one without it on the same seeds. *)

open Sqlval
module A = Sqlast.Ast

let parse sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok stmt -> stmt
  | Error e ->
      Alcotest.failf "parse failure on %S: %s" sql (Sqlparse.Parser.show_error e)

(* ---------- golden diagnostics ---------- *)

let golden_env dialect =
  let open Analysis.Typecheck in
  let col name ty =
    {
      col_name = name;
      col_type = ty;
      col_collation = Collation.Binary;
      col_nullability = Analysis.Nullability.Maybe_null;
    }
  in
  let int_t = Datatype.Int { width = Datatype.Regular; unsigned = false } in
  Analysis.env dialect
    [
      { tab_name = "t0"; tab_columns = [ col "c0" int_t; col "c1" Datatype.Text ] };
      { tab_name = "t1"; tab_columns = [ col "c0" Datatype.Bool ] };
    ]

let golden_cases =
  [
    ( Dialect.Sqlite_like,
      "SELECT missing FROM t0",
      [ "error[unknown-column] at query.item1: unknown column missing" ] );
    ( Dialect.Sqlite_like,
      "SELECT c0 FROM t0, t1",
      [ "error[ambiguous-column] at query.item1: ambiguous column name c0" ] );
    ( Dialect.Sqlite_like,
      "SELECT nope.* FROM t0",
      [ "error[unknown-table] at query.item1: nope.* refers to no table in scope" ]
    );
    ( Dialect.Sqlite_like,
      "SELECT ABS(c0, c1) FROM t0",
      [ "error[wrong-arity] at query.item1: abs expects 1 argument, got 2" ] );
    ( Dialect.Mysql_like,
      "SELECT TYPEOF(c0) FROM t0",
      [
        "error[unavailable-function] at query.item1: typeof is not available \
         in the mysql dialect";
      ] );
    ( Dialect.Postgres_like,
      "SELECT LOWER(c0) FROM t0",
      [
        "error[type-mismatch] at query.item1: lower argument 1 cannot be \
         integer (text expected)";
      ] );
    ( Dialect.Postgres_like,
      "SELECT c0 FROM t0 WHERE c1",
      [
        "error[boolean-context] at query.where: argument of a boolean context \
         must be boolean, not text";
      ] );
    ( Dialect.Mysql_like,
      "SELECT c0 FROM t0 WHERE c1 GLOB 'x*'",
      [
        "error[dialect-mismatch] at query.where: GLOB is sqlite-specific, not \
         available in mysql";
      ] );
    ( Dialect.Postgres_like,
      "SELECT c0 FROM t1 WHERE c0 IS 1",
      [
        "error[type-mismatch] at query.where: cannot compare boolean with \
         integer in the postgres dialect";
      ] );
    ( Dialect.Sqlite_like,
      "SELECT MIN(MAX(c0)) FROM t0",
      [
        "error[nested-aggregate] at query.item1.arg: aggregate function calls \
         cannot be nested";
      ] );
    ( Dialect.Sqlite_like,
      "SELECT c0 FROM t0 WHERE SUM(c0) = 3",
      [
        "error[misplaced-aggregate] at query.where.lhs: aggregate function in \
         a context that forbids aggregates";
      ] );
    ( Dialect.Sqlite_like,
      "SELECT *",
      [ "error[empty-select] at query.item1: SELECT * with no FROM clause" ] );
    ( Dialect.Sqlite_like,
      "SELECT c0 FROM t0 WHERE NULL",
      [
        "warning[null-predicate] at query.where: the WHERE clause always \
         evaluates to NULL and selects nothing";
      ] );
    ( Dialect.Sqlite_like,
      "VALUES (1), (2, 3)",
      [
        "error[column-count-mismatch] at query.row2: VALUES row has 2 \
         columns, expected 1";
      ] );
    ( Dialect.Mysql_like,
      "SELECT c0 FROM t0 INTERSECT SELECT c0, c1 FROM t0",
      [ "error[column-count-mismatch] at query: compound arms have 1 and 2 columns" ]
    );
    ( Dialect.Postgres_like,
      "SELECT c0 FROM t0 INTERSECT SELECT c1 FROM t0",
      [
        "error[type-mismatch] at query: INTERSECT column 1 combines integer \
         with text";
      ] );
    ( Dialect.Postgres_like,
      "SELECT c0 FROM t0 WHERE c0 = c1",
      [
        "error[type-mismatch] at query.where: cannot compare integer with \
         text in the postgres dialect";
      ] );
    (* well-typed controls stay clean *)
    (Dialect.Sqlite_like, "SELECT c0 FROM t0 WHERE c1 GLOB 'x*'", []);
    (Dialect.Postgres_like, "SELECT LOWER(c1), c0 + 1 FROM t0 WHERE c0 = 3", []);
  ]

let test_golden () =
  List.iter
    (fun (dialect, sql, expected) ->
      let env = golden_env dialect in
      let got =
        List.map Analysis.Diagnostic.to_string (Analysis.check_stmt env (parse sql))
      in
      Alcotest.(check (list string))
        (Printf.sprintf "[%s] %s" (Dialect.name dialect) sql)
        expected got)
    golden_cases

(* ---------- nullability lattice laws ---------- *)

let test_nullability_lattice () =
  let open Analysis.Nullability in
  let all = [ Not_null; Maybe_null; Definitely_null ] in
  List.iter
    (fun a ->
      Alcotest.(check bool) "join idempotent" true (equal (join a a) a);
      List.iter
        (fun b ->
          Alcotest.(check bool) "join commutes" true
            (equal (join a b) (join b a)))
        all)
    all;
  (* strict: NULL poisons; coalesce: first non-null wins *)
  Alcotest.(check bool) "strict absorbs definite NULL" true
    (equal (strict [ Not_null; Definitely_null ]) Definitely_null);
  Alcotest.(check bool) "strict of non-nulls" true
    (equal (strict [ Not_null; Not_null ]) Not_null);
  Alcotest.(check bool) "coalesce short-circuits" true
    (equal (coalesce [ Definitely_null; Not_null ]) Not_null);
  Alcotest.(check bool) "coalesce of definite NULLs" true
    (equal (coalesce [ Definitely_null; Definitely_null ]) Definitely_null);
  (* of_value abstracts concrete values soundly *)
  Alcotest.(check bool) "NULL abstracts to definitely-null" true
    (equal (of_value Value.Null) Definitely_null);
  Alcotest.(check bool) "non-NULL abstracts to not-null" true
    (equal (of_value (Value.Int 3L)) Not_null);
  Alcotest.(check bool) "consistency is reflexive through of_value" true
    (consistent_with_value (of_value Value.Null) Value.Null
    && consistent_with_value (of_value (Value.Text "x")) (Value.Text "x"));
  Alcotest.(check bool) "maybe-null is consistent with anything" true
    (consistent_with_value Maybe_null Value.Null
    && consistent_with_value Maybe_null (Value.Int 0L));
  Alcotest.(check bool) "not-null rejects NULL" false
    (consistent_with_value Not_null Value.Null);
  Alcotest.(check bool) "definitely-null rejects values" false
    (consistent_with_value Definitely_null (Value.Int 0L))

(* ---------- acceptance: the 1,000-seed generator sweep ---------- *)

let sweep_clean dialect ~seed_lo ~seed_hi () =
  let r = Pqs.Lint.sweep ~seed_lo ~seed_hi dialect in
  Alcotest.(check int) "every seed visited" (seed_hi - seed_lo + 1) r.Pqs.Lint.sw_seeds;
  Alcotest.(check bool) "sweep analyzed queries" true (r.Pqs.Lint.sw_queries > 0);
  Alcotest.(check bool) "sweep linted plans" true (r.Pqs.Lint.sw_plans > 0);
  Alcotest.(check (list string))
    "generated queries are diagnostic-free" []
    (List.map
       (fun (seed, d) ->
         Printf.sprintf "seed %d: %s" seed (Analysis.Diagnostic.to_string d))
       r.Pqs.Lint.sw_diags)

(* ---------- soundness: nullability vs the oracle interpreter ---------- *)

let build_session ~seed dialect =
  let rng = Pqs.Rng.make ~seed in
  let session = Engine.Session.create ~seed ~bugs:Engine.Bug.empty_set dialect in
  let gen_cfg =
    Pqs.Gen_db.Config.(
      make dialect |> with_rng rng |> with_max_rows 5
      |> with_extra_statements 4)
  in
  let exec stmt =
    match Engine.Session.execute session stmt with
    | Ok _ | Error _ -> ()
    | exception Engine.Errors.Crash _ -> ()
  in
  List.iter exec (Pqs.Gen_db.initial_statements gen_cfg);
  List.iter exec (Pqs.Gen_db.fill_statements gen_cfg session);
  (rng, session)

let test_pivot_crosscheck () =
  let checked = ref 0 in
  List.iter
    (fun dialect ->
      for seed = 1 to 40 do
        let rng, session = build_session ~seed dialect in
        let sources =
          Pqs.Schema_info.tables_of_session session
          |> List.filter_map (fun (ti : Pqs.Schema_info.table_info) ->
                 match
                   Pqs.Schema_info.rows_of_table session
                     ti.Pqs.Schema_info.ti_name
                 with
                 | [] -> None
                 | rows -> Some (ti, rows))
        in
        match sources with
        | [] -> ()
        | (ti, rows) :: _ -> (
            let pivot = [ (ti, Pqs.Rng.pick rng rows) ] in
            let csl =
              Engine.Options.case_sensitive_like
                (Engine.Session.options session)
            in
            match
              Pqs.Gen_query.synthesize ~rng ~dialect ~pivot
                ~case_sensitive_like:csl ~max_depth:4 ~check_expressions:true
                ()
            with
            | Error _ -> ()
            | Ok t -> (
                match t.Pqs.Gen_query.query.A.sel_where with
                | None -> ()
                | Some where ->
                    incr checked;
                    let ienv =
                      Pqs.Interp.env_of_pivot ~case_sensitive_like:csl dialect
                        pivot
                    in
                    let aenv = Pqs.Lint.env_of_pivot dialect pivot in
                    List.iter
                      (fun conjunct ->
                        let ty, diags =
                          Analysis.check_expr aenv conjunct
                        in
                        (* rectified conjuncts typecheck cleanly... *)
                        Alcotest.(check (list string))
                          "rectified conjunct has no error diagnostics" []
                          (List.map Analysis.Diagnostic.to_string
                             (List.filter Analysis.Diagnostic.is_error diags));
                        let null =
                          ty.Analysis.Typecheck.ty_nullability
                        in
                        (* ...are never statically certain to be NULL... *)
                        Alcotest.(check bool)
                          "rectified conjunct is not definitely-null" false
                          (Analysis.Nullability.equal null
                             Analysis.Nullability.Definitely_null);
                        (* ...and the static nullability abstracts the
                           interpreter's concrete result on the pivot row *)
                        match Pqs.Interp.eval ienv conjunct with
                        | Error _ -> ()
                        | Ok v ->
                            Alcotest.(check bool)
                              "static nullability consistent with concrete \
                               evaluation"
                              true
                              (Analysis.Nullability.consistent_with_value null
                                 v))
                      (Engine.Planner.conjuncts where)))
      done)
    [ Dialect.Sqlite_like; Dialect.Mysql_like; Dialect.Postgres_like ];
  Alcotest.(check bool) "cross-checked a meaningful corpus" true (!checked > 30)

(* ---------- neutrality: the lint oracle changes no campaign verdict ---------- *)

let report_key (r : Pqs.Bug_report.t) =
  ( (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle),
    (r.Pqs.Bug_report.message, Pqs.Bug_report.script r) )

let test_campaign_neutral () =
  let bugs =
    Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like)
  in
  let plain = Pqs.Runner.Config.make ~bugs Dialect.Sqlite_like in
  let linted =
    Pqs.Runner.Config.make ~bugs
      ~oracles:(Pqs.Oracle.defaults @ [ Pqs.Lint.oracle ])
      Dialect.Sqlite_like
  in
  let a = Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:20 plain in
  let b = Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:20 linted in
  Alcotest.(check bool) "campaign found bugs to compare" true
    (Pqs.Campaign.reports a <> []);
  Alcotest.(check (list (pair (pair int string) (pair string string))))
    "identical bug sets with and without the lint oracle"
    (List.map report_key (Pqs.Campaign.reports a))
    (List.map report_key (Pqs.Campaign.reports b));
  (* the lint oracle did run: its work is visible in the stats *)
  Alcotest.(check bool) "lint checks counted" true
    (b.Pqs.Campaign.stats.Pqs.Stats.lint_checks > 0);
  Alcotest.(check int) "no lint checks without the oracle" 0
    a.Pqs.Campaign.stats.Pqs.Stats.lint_checks;
  (* and on a clean engine it stays silent over a real run *)
  let clean =
    Pqs.Runner.Config.make
      ~oracles:(Pqs.Oracle.defaults @ [ Pqs.Lint.oracle ])
      Dialect.Sqlite_like
  in
  let c = Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:12 clean in
  Alcotest.(check (list string))
    "no findings on a clean engine" []
    (List.map
       (fun r -> r.Pqs.Bug_report.message)
       (Pqs.Campaign.reports c));
  Alcotest.(check int) "no diagnostics on a clean engine" 0
    c.Pqs.Campaign.stats.Pqs.Stats.lint_diagnostics

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "golden ill-typed SQL" `Quick test_golden;
          Alcotest.test_case "nullability lattice laws" `Quick
            test_nullability_lattice;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "sqlite seeds 1-400" `Quick
            (sweep_clean Dialect.Sqlite_like ~seed_lo:1 ~seed_hi:400);
          Alcotest.test_case "mysql seeds 401-700" `Quick
            (sweep_clean Dialect.Mysql_like ~seed_lo:401 ~seed_hi:700);
          Alcotest.test_case "postgres seeds 701-1000" `Quick
            (sweep_clean Dialect.Postgres_like ~seed_lo:701 ~seed_hi:1000);
        ] );
      ( "soundness",
        [
          Alcotest.test_case "nullability vs interpreter on the pivot" `Quick
            test_pivot_crosscheck;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "campaign neutrality" `Quick test_campaign_neutral;
        ] );
    ]
