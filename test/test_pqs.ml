(* PQS integration tests: the properties the paper's method rests on.

   - agreement: the oracle interpreter and the (bug-free) engine evaluate
     random expressions identically;
   - rectification: rectified conditions always evaluate to TRUE;
   - soundness: a full PQS run against the correct engine reports nothing;
   - effectiveness: representative injected bugs are detected by the
     expected oracle;
   - reduction: reduced scripts still manifest and are no longer. *)

open Sqlval
module A = Sqlast.Ast

let nan_tolerant_equal (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Real x, Value.Real y ->
      (Float.is_nan x && Float.is_nan y) || Float.equal x y
  | _ -> Value.equal a b

(* Random schema+row for the agreement property.  Values are generated
   through the column-compatible literal generator and stored through the
   engine (so affinity conversions apply) — the pivot is then read back
   from the heap, exactly as the runner does. *)
let random_case dialect seed =
  let rng = Pqs.Rng.make ~seed in
  let ncols = Pqs.Rng.int_in rng 1 3 in
  let gen_cfg =
    Pqs.Gen_db.Config.(
      make dialect |> with_rng rng |> with_table_count 1
      |> with_max_columns ncols)
  in
  let session = Engine.Session.create dialect in
  let stmts = Pqs.Gen_db.initial_statements gen_cfg in
  List.iter
    (fun s -> ignore (Engine.Session.execute session s))
    stmts;
  match Pqs.Schema_info.tables_of_session session with
  | [] -> None
  | ti :: _ -> (
      (* one row through the engine *)
      (match
         Engine.Session.execute session (Pqs.Gen_db.insert_stmt gen_cfg ti)
       with
      | Ok _ | Error _ -> ());
      match Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name with
      | [] -> None
      | row :: _ ->
          let pool =
            Array.to_list row |> List.filter (fun v -> not (Value.is_null v))
          in
          let expr =
            Pqs.Gen_expr.scalar
              { Pqs.Gen_expr.rng; dialect; tables = [ ti ]; max_depth = 4; pool }
          in
          Some (session, ti, row, expr))

let agreement_one dialect seed =
  match random_case dialect seed with
  | None -> true
  | Some (session, ti, row, expr) -> (
      let interp_env = Pqs.Interp.env_of_pivot dialect [ (ti, row) ] in
      let interp_result = Pqs.Interp.eval interp_env expr in
      let q =
        A.Q_select
          {
            A.sel_distinct = false;
            sel_items = [ A.Sel_expr (expr, None) ];
            sel_from =
              [ A.F_table { name = ti.Pqs.Schema_info.ti_name; alias = None } ];
            sel_where = None;
            sel_group_by = [];
            sel_having = None;
            sel_order_by = [];
            sel_limit = Some 1L (* the insert may have added extra rows *);
            sel_offset = None;
          }
      in
      let engine_result = Engine.Session.query session q in
      match (interp_result, engine_result) with
      | Ok iv, Ok rs -> (
          match rs.Engine.Executor.rs_rows with
          | [ [| ev |] ] ->
              if nan_tolerant_equal iv ev then true
              else
                QCheck.Test.fail_reportf
                  "disagreement on %s\n  table: %s\n  row: %s\n  interp: %s\n  engine: %s"
                  (Sqlast.Sql_printer.expr dialect expr)
                  (Format.asprintf "%a" Pqs.Schema_info.pp_table_info ti)
                  (String.concat "|"
                     (List.map Value.show (Array.to_list row)))
                  (Value.show iv) (Value.show ev)
          | rows ->
              QCheck.Test.fail_reportf "expected 1 row, got %d"
                (List.length rows))
      | Error _, Error _ -> true
      | Error ie, Ok rs ->
          let ev =
            match rs.Engine.Executor.rs_rows with
            | [ [| v |] ] -> Value.show v
            | _ -> "?"
          in
          QCheck.Test.fail_reportf
            "interp errored (%s) but engine returned %s on %s" ie ev
            (Sqlast.Sql_printer.expr dialect expr)
      | Ok iv, Error ee ->
          QCheck.Test.fail_reportf
            "engine errored (%s) but interp returned %s on %s"
            (Engine.Errors.show ee) (Value.show iv)
            (Sqlast.Sql_printer.expr dialect expr))

let agreement_prop dialect =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "oracle/engine agreement (%s)" (Dialect.name dialect))
    ~count:800 QCheck.small_nat
    (fun seed -> agreement_one dialect (seed * 3 + 11))

(* rectified conditions always evaluate TRUE under the interpreter and
   select the pivot row in the engine *)
let soundness_run dialect =
  let config =
    (* count raw disagreements *)
    Pqs.Runner.Config.make ~seed:4242 ~verify_ground_truth:false dialect
  in
  let stats = Pqs.Runner.run ~max_queries:300 config in
  (stats, config)

let test_soundness dialect () =
  let stats, _ = soundness_run dialect in
  Alcotest.(check int)
    (Printf.sprintf "no findings on correct engine (%s)" (Dialect.name dialect))
    0
    (List.length stats.Pqs.Stats.reports);
  Alcotest.(check bool) "issued queries" true (stats.Pqs.Stats.queries > 100)

(* representative injected bugs are found, each by its expected oracle;
   like the evaluation harness, hunting retries a few seeds *)
let detect bug ~max_queries =
  let info = Engine.Bug.info bug in
  let rec go = function
    | [] -> None
    | seed :: rest -> (
        let config =
          Pqs.Runner.Config.make ~seed
            ~bugs:(Engine.Bug.set_of_list [ bug ])
            info.Engine.Bug.dialect
        in
        match Pqs.Runner.hunt config ~max_queries with
        | Some r -> Some r
        | None -> go rest)
  in
  go [ 7; 77; 777 ]

let test_detects bug expected_oracle () =
  match detect bug ~max_queries:10000 with
  | None -> Alcotest.failf "bug %s not detected" (Engine.Bug.show bug)
  | Some r ->
      Alcotest.(check string)
        (Printf.sprintf "oracle for %s" (Engine.Bug.show bug))
        (Pqs.Bug_report.oracle_label expected_oracle)
        (Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)

let test_reduction () =
  let bug = Engine.Bug.Sq_partial_index_implies_not_null in
  match detect bug ~max_queries:10000 with
  | None -> Alcotest.fail "seed bug not detected"
  | Some r ->
      let bugs = Engine.Bug.set_of_list [ bug ] in
      let reduced = Pqs.Reducer.reduce_report r ~bugs in
      let red = Option.get reduced.Pqs.Bug_report.reduced in
      Alcotest.(check bool) "reduced is smaller or equal" true
        (List.length red <= List.length r.Pqs.Bug_report.statements);
      (* the reduced script still manifests *)
      let check =
        Pqs.Reducer.manifestation_check ~dialect:r.Pqs.Bug_report.dialect
          ~bugs ~oracle:r.Pqs.Bug_report.oracle
      in
      Alcotest.(check bool) "reduced still manifests" true (check red)

let () =
  Alcotest.run "pqs"
    [
      ( "agreement",
        List.map QCheck_alcotest.to_alcotest
          [
            agreement_prop Dialect.Sqlite_like;
            agreement_prop Dialect.Mysql_like;
            agreement_prop Dialect.Postgres_like;
          ] );
      ( "soundness",
        [
          Alcotest.test_case "sqlite" `Slow (test_soundness Dialect.Sqlite_like);
          Alcotest.test_case "mysql" `Slow (test_soundness Dialect.Mysql_like);
          Alcotest.test_case "postgres" `Slow (test_soundness Dialect.Postgres_like);
        ] );
      ( "detection",
        [
          Alcotest.test_case "partial index (L1)" `Slow
            (test_detects Engine.Bug.Sq_partial_index_implies_not_null
               Pqs.Bug_report.Containment);
          Alcotest.test_case "rtrim compare (L5)" `Slow
            (test_detects Engine.Bug.Sq_rtrim_compare_asymmetric
               Pqs.Bug_report.Containment);
          Alcotest.test_case "real pk corruption (L10)" `Slow
            (test_detects Engine.Bug.Sq_real_pk_or_replace_corrupt
               Pqs.Bug_report.Error_oracle);
          Alcotest.test_case "check table crash (L14)" `Slow
            (test_detects Engine.Bug.My_check_upgrade_expr_index_crash
               Pqs.Bug_report.Crash);
          Alcotest.test_case "double negation (L13)" `Slow
            (test_detects Engine.Bug.My_double_negation_fold
               Pqs.Bug_report.Containment);
          Alcotest.test_case "inherit group by (L15) via error/contains" `Slow
            (fun () ->
              match
                detect Engine.Bug.Pg_stats_expr_index_bitmapset
                  ~max_queries:10000
              with
              | None -> Alcotest.fail "bitmapset bug not detected"
              | Some _ -> ());
        ] );
      ("reduction", [ Alcotest.test_case "reduce report" `Slow test_reduction ]);
    ]
