(* The coverage observatory's contracts:

   - frontier monoid laws: [Frontier.union] is associative and
     commutative with [empty] as identity, witnessed structurally (the
     representation is canonical), hit counts add, [first_seed] takes the
     minimum, and [of_points] equals a fold of [hit] (the sorted-merge
     fast path is behaviorally identical to the spec);
   - coverage-instrument monoid laws through [Engine.Coverage.points],
     including points hit but never statically declared (extras must
     survive [union] / [merge_into] with exact counts);
   - the [Gen_bias] vocabulary: shape points round-trip through
     encode/decode, the per-dialect universe is duplicate-free with the
     documented cardinality, fingerprints lead with the shape point, and
     cold-point planning aims at the least-exercised combination;
   - the Chrome-trace export: every round becomes one complete event
     whose [round_id] equals its seed (the cross-link to flight-recorder
     logs and bundle names), worker timelines are named, and rounds that
     fired an oracle carry their repro-bundle path;
   - the dashboard: incremental [feed_line] aggregation, rate/funnel
     rendering, the HTML report, and whole-trace ingestion of a real
     campaign trace;
   - guided generation is strictly additive: a guided campaign reports on
     every seed the blind campaign reports on (same seeds, same config),
     and the frontier telemetry gauges/histograms are exported. *)

open Sqlval

(* ---------- a minimal JSON parser (no yojson in this environment) ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?';
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> is_num c | None -> false) do
      advance ()
    done;
    Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Jobj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Jarr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Jarr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Jobj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad_json ("missing member " ^ k)))
  | _ -> raise (Bad_json "not an object")

let member_opt k = function Jobj kvs -> List.assoc_opt k kvs | _ -> None
let jarr = function Jarr l -> l | _ -> raise (Bad_json "not an array")
let jstr = function Jstr s -> s | _ -> raise (Bad_json "not a string")
let jnum = function Jnum f -> f | _ -> raise (Bad_json "not a number")
let jint j = int_of_float (jnum j)

(* ---------- frontier monoid laws ---------- *)

let vocab =
  [| "expr.cmp"; "expr.like"; "shape.jsingle.v0.w1.d0.o0.g0";
     "plan.full_scan"; "zz.other" |]

let frontier_of_hits l =
  List.fold_left
    (fun f (i, seed) -> Frontier.hit f ~seed vocab.(i mod Array.length vocab))
    Frontier.empty l

let print_frontier f =
  Frontier.points f
  |> List.map (fun (p, e) ->
         Printf.sprintf "%s:%dx@%d" p e.Frontier.hits e.Frontier.first_seed)
  |> String.concat ";"

let arb_frontier =
  QCheck.make
    ~print:(fun l -> print_frontier (frontier_of_hits l))
    QCheck.Gen.(
      list_size (int_bound 20)
        (pair (int_bound (Array.length vocab - 1)) (int_range 1 50)))

let to_frontiers = List.map frontier_of_hits

let prop_union_assoc =
  QCheck.Test.make ~name:"union is associative" ~count:200
    (QCheck.triple arb_frontier arb_frontier arb_frontier)
    (fun (a, b, c) ->
      match to_frontiers [ a; b; c ] with
      | [ a; b; c ] ->
          Frontier.union (Frontier.union a b) c
          = Frontier.union a (Frontier.union b c)
      | _ -> false)

let prop_union_comm =
  QCheck.Test.make ~name:"union is commutative" ~count:200
    (QCheck.pair arb_frontier arb_frontier) (fun (a, b) ->
      match to_frontiers [ a; b ] with
      | [ a; b ] -> Frontier.union a b = Frontier.union b a
      | _ -> false)

let prop_union_identity =
  QCheck.Test.make ~name:"empty is a two-sided identity" ~count:200
    arb_frontier (fun a ->
      let a = frontier_of_hits a in
      Frontier.union Frontier.empty a = a
      && Frontier.union a Frontier.empty = a)

let prop_union_hits_add =
  QCheck.Test.make ~name:"union adds hit counts, min first_seed" ~count:200
    (QCheck.pair arb_frontier arb_frontier) (fun (la, lb) ->
      let a = frontier_of_hits la and b = frontier_of_hits lb in
      let u = Frontier.union a b in
      Array.for_all
        (fun p ->
          Frontier.hits u p = Frontier.hits a p + Frontier.hits b p)
        vocab
      && List.for_all
           (fun (p, (e : Frontier.entry)) ->
             let first f =
               List.assoc_opt p (Frontier.points f)
               |> Option.map (fun (e : Frontier.entry) -> e.Frontier.first_seed)
             in
             match (first a, first b) with
             | Some x, Some y -> e.Frontier.first_seed = min x y
             | Some x, None | None, Some x -> e.Frontier.first_seed = x
             | None, None -> false)
           (Frontier.points u))

let prop_of_points_spec =
  QCheck.Test.make ~name:"of_points = fold of hit" ~count:200
    (QCheck.pair (QCheck.int_range 1 50)
       (QCheck.list_of_size (QCheck.Gen.int_bound 30)
          (QCheck.int_bound (Array.length vocab - 1))))
    (fun (seed, idxs) ->
      let pts = List.map (fun i -> vocab.(i)) idxs in
      Frontier.of_points ~seed pts
      = List.fold_left (fun f p -> Frontier.hit f ~seed p) Frontier.empty pts)

let prop_canonical_sorted =
  QCheck.Test.make ~name:"representation is sorted and duplicate-free"
    ~count:200
    (QCheck.pair arb_frontier arb_frontier) (fun (a, b) ->
      let u = Frontier.union (frontier_of_hits a) (frontier_of_hits b) in
      let names = List.map fst (Frontier.points u) in
      List.sort_uniq String.compare names = names)

let test_frontier_views () =
  let f = Frontier.of_points ~seed:7 [ "a"; "b"; "a" ] in
  let universe = [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check int) "cardinal" 2 (Frontier.cardinal f);
  Alcotest.(check int) "hit_in" 2 (Frontier.hit_in ~universe f);
  Alcotest.(check (float 1e-9)) "fraction" 0.5 (Frontier.fraction ~universe f);
  Alcotest.(check (list string)) "cold" [ "c"; "d" ] (Frontier.cold ~universe f);
  Alcotest.(check (list (pair string int)))
    "coldest ranks never-hit first, ties in universe order"
    [ ("c", 0); ("d", 0); ("b", 1) ]
    (Frontier.coldest ~n:3 ~universe f);
  (* points outside the universe are kept, not dropped *)
  let extra = Frontier.hit f ~seed:9 "zz.extra" in
  Alcotest.(check int) "extra point counted" 1 (Frontier.hits extra "zz.extra");
  Alcotest.(check int) "extra does not enter hit_in" 2
    (Frontier.hit_in ~universe extra)

let test_frontier_json () =
  let f = Frontier.of_points ~seed:3 [ "a"; "a"; "b" ] in
  let doc =
    parse_json
      (Frontier.to_json ~universe:[ "a"; "b"; "c" ]
         ~bundles:[ "bundles/bundle-000003-containment" ] f)
  in
  Alcotest.(check int) "universe size" 3 (jint (member "universe" doc));
  Alcotest.(check int) "hit" 2 (jint (member "hit" doc));
  let pts = jarr (member "points" doc) in
  Alcotest.(check int) "two points" 2 (List.length pts);
  let a = List.hd pts in
  Alcotest.(check string) "point name" "a" (jstr (member "point" a));
  Alcotest.(check int) "hits" 2 (jint (member "hits" a));
  Alcotest.(check int) "first_seed" 3 (jint (member "first_seed" a));
  Alcotest.(check (list string))
    "cold list" [ "c" ]
    (List.map jstr (jarr (member "cold" doc)));
  Alcotest.(check (list string))
    "bundle cross-links"
    [ "bundles/bundle-000003-containment" ]
    (List.map jstr (jarr (member "bundles" doc)))

(* ---------- coverage-instrument monoid laws ---------- *)

let cov_vocab =
  Array.of_list
    ((match Engine.Coverage.static_universe with
     | a :: b :: c :: _ -> [ a; b; c ]
     | l -> l)
    @ [ "zz.extra.one"; "zz.extra.two" ])

let realize_cov idxs =
  let c = Engine.Coverage.create () in
  List.iter
    (fun i -> Engine.Coverage.hit c cov_vocab.(i mod Array.length cov_vocab))
    idxs;
  c

let arb_cov =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      list_size (int_bound 15) (int_bound (Array.length cov_vocab - 1)))

let prop_cov_assoc_comm =
  QCheck.Test.make ~name:"coverage union is associative and commutative"
    ~count:100
    (QCheck.triple arb_cov arb_cov arb_cov)
    (fun (a, b, c) ->
      let p x = Engine.Coverage.points x in
      let u = Engine.Coverage.union in
      p (u (u (realize_cov a) (realize_cov b)) (realize_cov c))
      = p (u (realize_cov a) (u (realize_cov b) (realize_cov c)))
      && p (u (realize_cov a) (realize_cov b))
         = p (u (realize_cov b) (realize_cov a)))

let prop_cov_merge_into =
  QCheck.Test.make ~name:"merge_into agrees with union (extras included)"
    ~count:100
    (QCheck.pair arb_cov arb_cov)
    (fun (a, b) ->
      let dst = realize_cov a in
      Engine.Coverage.merge_into ~dst ~src:(realize_cov b);
      Engine.Coverage.points dst
      = Engine.Coverage.points
          (Engine.Coverage.union (realize_cov a) (realize_cov b)))

let test_cov_extras () =
  let a = Engine.Coverage.create () and b = Engine.Coverage.create () in
  Engine.Coverage.hit a "zz.not.declared";
  Engine.Coverage.hit b "zz.not.declared";
  Engine.Coverage.hit b "zz.not.declared";
  let u = Engine.Coverage.union a b in
  Alcotest.(check int) "extra hit counts add across union" 3
    (Engine.Coverage.hit_count u "zz.not.declared");
  let dst = Engine.Coverage.create () in
  Engine.Coverage.merge_into ~dst ~src:u;
  Alcotest.(check int) "extra survives merge_into" 3
    (Engine.Coverage.hit_count dst "zz.not.declared");
  Alcotest.(check bool) "extra widens the universe" true
    (Engine.Coverage.universe_size dst
    > List.length Engine.Coverage.static_universe - 1)

(* ---------- Gen_bias vocabulary ---------- *)

let test_shape_roundtrip () =
  let shapes =
    List.filter
      (fun p -> String.length p > 6 && String.sub p 0 6 = "shape.")
      (Pqs.Gen_bias.universe Dialect.Sqlite_like)
  in
  Alcotest.(check bool) "shape points exist" true (shapes <> []);
  List.iter
    (fun p ->
      match Pqs.Gen_bias.shape_of_point p with
      | None -> Alcotest.failf "%s does not decode" p
      | Some s ->
          Alcotest.(check string)
            (p ^ " round-trips") p
            (Pqs.Gen_bias.point_of_shape s))
    shapes;
  Alcotest.(check (option Alcotest.reject))
    "malformed points rejected" None
    (Pqs.Gen_bias.shape_of_point "shape.jweird.v0.w1.d0.o0.g0")

let test_universe () =
  let u = Pqs.Gen_bias.universe Dialect.Sqlite_like in
  Alcotest.(check int) "sqlite universe cardinality" 147 (List.length u);
  Alcotest.(check int) "universe is duplicate-free" (List.length u)
    (List.length (List.sort_uniq String.compare u));
  Alcotest.(check bool) "mysql never reaches plan.partial_index" false
    (List.mem "plan.partial_index"
       (Pqs.Gen_bias.universe Dialect.Mysql_like));
  Alcotest.(check bool) "sqlite does" true
    (List.mem "plan.partial_index" (Pqs.Gen_bias.plan_points Dialect.Sqlite_like))

let test_fingerprint () =
  let open Sqlast.Ast in
  let q =
    {
      sel_distinct = false;
      sel_items = [ Sel_expr (Col { table = None; column = "c0" }, None) ];
      sel_from = [ F_table { name = "t0"; alias = None } ];
      sel_where =
        Some
          (Binary
             ( Eq,
               Col { table = None; column = "c0" },
               Lit (Value.Int 1L) ));
      sel_group_by = [];
      sel_having = None;
      sel_order_by = [];
      sel_limit = None;
      sel_offset = None;
    }
  in
  match Pqs.Gen_bias.fingerprint q with
  | shape :: exprs ->
      Alcotest.(check string)
        "shape point first" "shape.jsingle.v0.w1.d0.o0.g0" shape;
      Alcotest.(check (list string)) "expr multiset" [ "expr.cmp" ] exprs
  | [] -> Alcotest.fail "empty fingerprint"

let test_cold_planning () =
  let dialect = Dialect.Sqlite_like in
  let universe = Pqs.Gen_bias.universe dialect in
  let shapes =
    List.filter
      (fun p -> String.length p > 6 && String.sub p 0 6 = "shape.")
      universe
  in
  let the_cold = "shape.jleft.v1.w3.d1.o1.g0" in
  Alcotest.(check bool) "chosen cold point is in the universe" true
    (List.mem the_cold shapes);
  (* warm every shape point except one; plan must aim exactly there *)
  let warmed =
    List.fold_left
      (fun f p -> if p = the_cold then f else Frontier.hit f ~seed:1 p)
      Frontier.empty shapes
  in
  let fired = ref 0 in
  for seed = 1 to 50 do
    let rng = Pqs.Rng.make ~seed in
    match Pqs.Gen_bias.plan ~rng ~dialect warmed with
    | Some s ->
        incr fired;
        Alcotest.(check string)
          "plan aims at the cold combination" the_cold
          (Pqs.Gen_bias.point_of_shape s)
    | None -> ()
  done;
  Alcotest.(check bool) "warm frontier fires shape guidance" true (!fired > 0);
  (* a stone-cold frontier must not fire (blind sampling keeps the wheel) *)
  for seed = 1 to 50 do
    let rng = Pqs.Rng.make ~seed in
    match Pqs.Gen_bias.plan ~rng ~dialect Frontier.empty with
    | Some _ -> Alcotest.fail "shape guidance fired on an all-cold frontier"
    | None -> ()
  done;
  (* cold_pred rotates onto the one unexercised WHERE-targetable kind *)
  let kinds =
    List.filter
      (fun p -> String.length p > 5 && String.sub p 0 5 = "expr.")
      universe
  in
  let warmed_kinds =
    List.fold_left
      (fun f p -> if p = "expr.glob" then f else Frontier.hit f ~seed:1 p)
      Frontier.empty kinds
  in
  Alcotest.(check (option string))
    "cold_pred picks the unexercised kind" (Some "glob")
    (Pqs.Gen_bias.cold_pred ~rng:(Pqs.Rng.make ~seed:1) ~dialect warmed_kinds);
  (* aggregates are never a predicate target, even when coldest *)
  let all_but_agg =
    List.fold_left
      (fun f p -> if p = "expr.agg" then f else Frontier.hit f ~seed:1 p)
      Frontier.empty kinds
  in
  match Pqs.Gen_bias.cold_pred ~rng:(Pqs.Rng.make ~seed:1) ~dialect all_but_agg with
  | Some "agg" -> Alcotest.fail "cold_pred targeted an aggregate"
  | Some _ | None -> ()

(* ---------- Chrome-trace round linkage ---------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let test_chrome_round_linkage () =
  let bugs =
    Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like)
  in
  let bundle_dir = temp_dir "pqs_bundles" in
  let config =
    Pqs.Runner.Config.make ~bugs ~bundle_dir Dialect.Sqlite_like
  in
  let c = Pqs.Campaign.run ~domains:2 ~seed_lo:1 ~seed_hi:25 config in
  let path = Filename.temp_file "chrome" ".json" in
  Pqs.Campaign.write_chrome_trace c path;
  let ic = open_in_bin path in
  let doc = parse_json (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Sys.remove path;
  let evs = jarr (member "traceEvents" doc) in
  let complete = List.filter (fun e -> jstr (member "ph" e) = "X") evs in
  Alcotest.(check int) "one complete event per seed" 24 (List.length complete);
  let seeds =
    List.map (fun e -> jint (member "seed" (member "args" e))) complete
    |> List.sort compare
  in
  Alcotest.(check (list int)) "all seeds present" (List.init 24 (fun i -> i + 1))
    seeds;
  List.iter
    (fun e ->
      let args = member "args" e in
      Alcotest.(check int)
        "round_id links the span to its round" (jint (member "seed" args))
        (jint (member "round_id" args));
      Alcotest.(check string)
        "span name carries the seed"
        (Printf.sprintf "seed %d" (jint (member "seed" args)))
        (jstr (member "name" e));
      Alcotest.(check bool) "duration is non-negative" true
        (jnum (member "dur" e) >= 0.0);
      if jint (member "reports" args) > 0 then
        match member_opt "bundle" args with
        | Some b ->
            (* the cross-link is the bundle's repro script *)
            Alcotest.(check bool)
              "report span links an existing bundle repro" true
              (Sys.file_exists (jstr b));
            let dir = Filename.basename (Filename.dirname (jstr b)) in
            Alcotest.(check bool)
              "bundle directory is named after the round" true
              (String.length dir > 7 && String.sub dir 0 7 = "bundle-")
        | None -> Alcotest.fail "report span lacks its bundle cross-link")
    complete;
  Alcotest.(check bool) "the catalog produced report spans to check" true
    (List.exists
       (fun e -> jint (member "reports" (member "args" e)) > 0)
       complete);
  (* every worker timeline is named via thread metadata *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> jint (member "tid" e)) complete)
  in
  let named =
    List.filter_map
      (fun e ->
        if
          jstr (member "ph" e) = "M"
          && jstr (member "name" e) = "thread_name"
        then Some (jint (member "tid" e))
        else None)
      evs
  in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "worker %d is named" tid)
        true (List.mem tid named))
    tids

(* ---------- dashboard ---------- *)

let test_dashboard_feed () =
  let d = Pqs.Dashboard.create ~dialect:Dialect.Sqlite_like in
  let fed =
    List.map
      (Pqs.Dashboard.feed_line d)
      [
        "{\"type\":\"seed\",\"seed\":1,\"worker\":0,\"statements\":12,\
         \"queries\":6,\"pivots\":2,\"reports\":0,\"wall_ms\":1.2,\
         \"points\":[\"expr.cmp\",\"expr.cmp\",\
         \"shape.jsingle.v0.w1.d0.o0.g0\"]}";
        "not json at all";
        "{\"type\":\"seed\",\"seed\":2,\"worker\":1,\"statements\":9,\
         \"queries\":4,\"pivots\":1,\"reports\":1,\"wall_ms\":0.8,\
         \"oracle\":\"containment\",\"points\":[\"expr.like\"]}";
        "{\"type\":\"campaign\",\"domains\":2,\"databases\":2,\
         \"statements\":21,\"queries\":10,\"reports\":1,\"wall_s\":0.002,\
         \"statements_per_sec\":10500.0,\"dialect\":\"sqlite\",\
         \"frontier_points\":3,\"frontier_fraction\":0.0204}";
      ]
  in
  Alcotest.(check (list bool))
    "recognized lines only" [ true; false; true; true ] fed;
  Alcotest.(check int) "rounds" 2 (Pqs.Dashboard.rounds d);
  Alcotest.(check int) "reports" 1 (Pqs.Dashboard.reports d);
  Alcotest.(check int) "frontier accumulates multisets" 2
    (Frontier.hits (Pqs.Dashboard.frontier d) "expr.cmp");
  Alcotest.(check (list (pair string int)))
    "oracle funnel" [ ("containment", 1) ]
    (Pqs.Dashboard.oracle_funnel d);
  let text = Pqs.Dashboard.render ~ansi:false ~stale:5 d in
  Alcotest.(check bool) "render shows the frontier bar" true
    (String.length text > 0
    &&
    let has sub =
      let n = String.length text and m = String.length sub in
      let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
      go 0
    in
    has "frontier" && has "containment");
  let html = Pqs.Dashboard.render_html ~stale:5 d in
  Alcotest.(check bool) "html report is a document" true
    (String.length html > 6 && String.sub html 0 6 = "<html>"
    || String.length html > 9 && String.sub html 0 9 = "<!DOCTYPE")

let test_dashboard_of_trace_file () =
  let bugs =
    Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like)
  in
  let config = Pqs.Runner.Config.make ~bugs Dialect.Sqlite_like in
  let trace = Filename.temp_file "trace" ".jsonl" in
  let c =
    Pqs.Campaign.run ~domains:2 ~trace ~seed_lo:1 ~seed_hi:21 config
  in
  let d = Pqs.Dashboard.of_trace_file ~dialect:Dialect.Sqlite_like trace in
  Sys.remove trace;
  Alcotest.(check int) "every round ingested" 20 (Pqs.Dashboard.rounds d);
  Alcotest.(check int) "every report ingested"
    (List.length (Pqs.Campaign.reports c))
    (Pqs.Dashboard.reports d);
  (* seed lines carry the distinct point names of each round (not the hit
     multiplicities), so the dashboard agrees with the campaign on which
     points were exercised *)
  Alcotest.(check (list string)) "frontier points match the campaign's"
    (List.map fst
       (Frontier.points c.Pqs.Campaign.stats.Pqs.Stats.frontier))
    (List.map fst (Frontier.points (Pqs.Dashboard.frontier d)))

(* ---------- guided generation is strictly additive ---------- *)

let seeds_with_reports (c : Pqs.Campaign.t) =
  List.sort_uniq compare
    (List.map (fun r -> r.Pqs.Bug_report.seed) (Pqs.Campaign.reports c))

let test_guided_superset () =
  let bugs =
    Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like)
  in
  let run guided =
    let config = Pqs.Runner.Config.make ~bugs ~guided Dialect.Sqlite_like in
    Pqs.Campaign.run ~domains:1 ~seed_lo:1 ~seed_hi:101 config
  in
  let blind = run false and guided = run true in
  let blind_seeds = seeds_with_reports blind in
  Alcotest.(check bool) "blind campaign found bugs to compare" true
    (blind_seeds <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "guided also reports on seed %d" s)
        true
        (List.mem s (seeds_with_reports guided)))
    blind_seeds;
  Alcotest.(check bool) "guided campaign accumulated a frontier" true
    (Frontier.cardinal guided.Pqs.Campaign.stats.Pqs.Stats.frontier > 0)

let test_frontier_telemetry_export () =
  let tele = Telemetry.create () in
  let config = Pqs.Runner.Config.make ~telemetry:tele Dialect.Sqlite_like in
  let c = Pqs.Campaign.run ~domains:1 ~seed_lo:1 ~seed_hi:11 config in
  let universe = Pqs.Gen_bias.universe Dialect.Sqlite_like in
  let prom = Telemetry.to_prometheus tele in
  let has sub =
    let n = String.length prom and m = String.length sub in
    let rec go i = i + m <= n && (String.sub prom i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "points-hit gauge exported per dialect" true
    (has
       (Printf.sprintf "pqs_frontier_points_hit{dialect=\"sqlite\"} %d"
          (Frontier.hit_in ~universe c.Pqs.Campaign.stats.Pqs.Stats.frontier)));
  Alcotest.(check bool) "fraction gauge exported" true
    (has "pqs_frontier_fraction{dialect=\"sqlite\"}");
  (* one first-hit observation per distinct point, grouped by vocabulary *)
  let first_hits =
    List.fold_left
      (fun acc g ->
        acc
        + Telemetry.histogram_count tele
            ~labels:[ ("phase", g) ]
            "pqs_frontier_first_hit_seconds")
      0
      [ "shape"; "expr"; "plan" ]
  in
  Alcotest.(check int) "first-hit histogram covers every hit point"
    (Frontier.cardinal c.Pqs.Campaign.stats.Pqs.Stats.frontier)
    first_hits

let () =
  Alcotest.run "frontier"
    [
      ( "monoid",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_assoc;
            prop_union_comm;
            prop_union_identity;
            prop_union_hits_add;
            prop_of_points_spec;
            prop_canonical_sorted;
          ]
        @ [
            Alcotest.test_case "universe views" `Quick test_frontier_views;
            Alcotest.test_case "json snapshot" `Quick test_frontier_json;
          ] );
      ( "coverage instrument",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cov_assoc_comm; prop_cov_merge_into ]
        @ [ Alcotest.test_case "undeclared extras" `Quick test_cov_extras ] );
      ( "gen_bias",
        [
          Alcotest.test_case "shape point round-trip" `Quick
            test_shape_roundtrip;
          Alcotest.test_case "universe" `Quick test_universe;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "cold planning" `Quick test_cold_planning;
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "round linkage" `Quick test_chrome_round_linkage;
        ] );
      ( "dashboard",
        [
          Alcotest.test_case "incremental feed" `Quick test_dashboard_feed;
          Alcotest.test_case "whole-trace ingestion" `Quick
            test_dashboard_of_trace_file;
        ] );
      ( "guided campaign",
        [
          Alcotest.test_case "additive guidance is a superset" `Quick
            test_guided_superset;
          Alcotest.test_case "frontier telemetry export" `Quick
            test_frontier_telemetry_export;
        ] );
    ]
