(* Cross-cutting property tests: compound-query algebra, ORDER BY/DISTINCT
   postconditions, literal round-trips through the parser, session
   determinism, and reducer structure. *)

open Sqlval
module A = Sqlast.Ast

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (4, map (fun i -> Value.Int (Int64.of_int i)) (int_range (-1000) 1000));
        ( 1,
          map
            (fun i -> Value.Int i)
            (oneofl [ 0L; 1L; -1L; Int64.max_int; 2851427734582196970L ]) );
        (2, map (fun f -> Value.Real f) (float_bound_inclusive 100.0));
        ( 3,
          map
            (fun s -> Value.Text s)
            (string_size ~gen:(char_range ' ' 'z') (0 -- 6)) );
        ( 1,
          map
            (fun s -> Value.Blob s)
            (string_size ~gen:(char_range 'a' 'f') (0 -- 4)) );
      ])

let rows_gen = QCheck.Gen.(list_size (0 -- 8) (list_repeat 2 value_gen))

let rows_arb =
  QCheck.make
    ~print:(fun rows ->
      String.concat ";"
        (List.map
           (fun r -> String.concat "," (List.map Value.show r))
           rows))
    rows_gen

let session () = Engine.Session.create Dialect.Sqlite_like

let values_query rows : A.query =
  A.Q_values (List.map (fun r -> List.map (fun v -> A.Lit v) r) rows)

let run_rows s q =
  match Engine.Session.query s q with
  | Ok rs -> rs.Engine.Executor.rs_rows
  | Error e -> QCheck.Test.fail_reportf "query failed: %s" (Engine.Errors.show e)

let canonical rows =
  List.sort compare
    (List.map
       (fun r -> Array.to_list (Array.map Value.to_display r))
       rows)

(* ---------- compound algebra ---------- *)

let prop_intersect_self =
  QCheck.Test.make ~name:"A INTERSECT A = dedup A" ~count:300 rows_arb
    (fun rows ->
      QCheck.assume (rows <> []);
      let s = session () in
      let a = values_query rows in
      let inter = run_rows s (A.Q_compound (A.Intersect, a, a)) in
      let union_dedup = run_rows s (A.Q_compound (A.Union, a, a)) in
      canonical inter = canonical union_dedup)

let prop_except_self =
  QCheck.Test.make ~name:"A EXCEPT A = empty" ~count:300 rows_arb (fun rows ->
      QCheck.assume (rows <> []);
      let s = session () in
      let a = values_query rows in
      run_rows s (A.Q_compound (A.Except, a, a)) = [])

let prop_union_all_cardinality =
  QCheck.Test.make ~name:"|A UNION ALL B| = |A| + |B|" ~count:300
    (QCheck.pair rows_arb rows_arb) (fun (ra, rb) ->
      QCheck.assume (ra <> [] && rb <> []);
      let s = session () in
      let u =
        run_rows s (A.Q_compound (A.Union_all, values_query ra, values_query rb))
      in
      List.length u = List.length ra + List.length rb)

let prop_union_commutative_cardinality =
  QCheck.Test.make ~name:"|A UNION B| = |B UNION A|" ~count:300
    (QCheck.pair rows_arb rows_arb) (fun (ra, rb) ->
      QCheck.assume (ra <> [] && rb <> []);
      let s = session () in
      let ab =
        run_rows s (A.Q_compound (A.Union, values_query ra, values_query rb))
      in
      let ba =
        run_rows s (A.Q_compound (A.Union, values_query rb, values_query ra))
      in
      canonical ab = canonical ba)

(* ---------- ORDER BY / DISTINCT over real tables ---------- *)

let table_of_rows s rows =
  (match
     Engine.Session.execute s
       (A.Create_table
          {
            A.ct_name = "t0";
            ct_if_not_exists = false;
            ct_columns =
              [
                { A.col_name = "c0"; col_type = Datatype.Any; col_collate = None; col_constraints = [] };
                { A.col_name = "c1"; col_type = Datatype.Any; col_collate = None; col_constraints = [] };
              ];
            ct_constraints = [];
            ct_without_rowid = false;
            ct_engine = None;
            ct_inherits = None;
          })
   with
  | Ok _ -> ()
  | Error e -> QCheck.Test.fail_reportf "create: %s" (Engine.Errors.show e));
  if rows <> [] then
    match
      Engine.Session.execute s
        (A.Insert
           {
             table = "t0";
             columns = [];
             rows = List.map (fun r -> List.map (fun v -> A.Lit v) r) rows;
             action = A.On_conflict_abort;
           })
    with
    | Ok _ -> ()
    | Error e -> QCheck.Test.fail_reportf "insert: %s" (Engine.Errors.show e)

let select ?(distinct = false) ?(order = []) () =
  A.Q_select
    {
      A.sel_distinct = distinct;
      sel_items = [ A.Star ];
      sel_from = [ A.F_table { name = "t0"; alias = None } ];
      sel_where = None;
      sel_group_by = [];
      sel_having = None;
      sel_order_by = order;
      sel_limit = None;
      sel_offset = None;
    }

let prop_order_by_sorted =
  QCheck.Test.make ~name:"ORDER BY yields sorted output" ~count:300 rows_arb
    (fun rows ->
      let s = session () in
      table_of_rows s rows;
      let out = run_rows s (select ~order:[ (A.col "c0", A.Asc) ] ()) in
      let keys = List.map (fun r -> r.(0)) out in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            Value.compare_total a b <= 0 && sorted rest
        | _ -> true
      in
      List.length out = List.length rows && sorted keys)

let prop_distinct_no_duplicates =
  QCheck.Test.make ~name:"DISTINCT output has no duplicates" ~count:300
    rows_arb (fun rows ->
      let s = session () in
      table_of_rows s rows;
      let out = canonical (run_rows s (select ~distinct:true ())) in
      List.length out = List.length (List.sort_uniq compare out))

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"DISTINCT is idempotent" ~count:200 rows_arb
    (fun rows ->
      let s = session () in
      table_of_rows s rows;
      let once = canonical (run_rows s (select ~distinct:true ())) in
      let twice = canonical (run_rows s (select ~distinct:true ())) in
      once = twice)

(* ---------- literal round-trip through printer + parser ---------- *)

let prop_literal_roundtrip =
  QCheck.Test.make ~name:"literal -> SQL text -> parser -> same value"
    ~count:800
    (QCheck.make ~print:Value.show value_gen)
    (fun v ->
      let sql = Value.to_sql_literal v in
      match Sqlparse.Parser.parse_expr sql with
      | Ok (A.Lit v') -> Value.equal v v'
      | Ok other ->
          QCheck.Test.fail_reportf "parsed non-literal %s from %s"
            (A.show_expr other) sql
      | Error e ->
          QCheck.Test.fail_reportf "unparseable literal %s: %s" sql
            (Sqlparse.Parser.show_error e))

(* ---------- session determinism ---------- *)

let prop_runner_deterministic =
  QCheck.Test.make ~name:"runner is a deterministic function of the seed"
    ~count:10 QCheck.small_nat (fun seed ->
      let go () =
        let config =
          Pqs.Runner.Config.make ~seed:(seed + 1) Dialect.Sqlite_like
        in
        let stats = Pqs.Runner.run ~max_queries:60 config in
        ( stats.Pqs.Stats.queries,
          stats.Pqs.Stats.statements,
          stats.Pqs.Stats.pivots,
          List.length stats.Pqs.Stats.reports )
      in
      go () = go ())

(* ---------- reducer structure ---------- *)

let prop_reducer_subsequence =
  QCheck.Test.make ~name:"reduced script is a subsequence of the original"
    ~count:100
    (QCheck.make ~print:(fun n -> string_of_int n) QCheck.Gen.(1 -- 8))
    (fun n ->
      let stmts =
        List.init n (fun i ->
            A.Insert
              {
                table = "t0";
                columns = [];
                rows = [ [ A.int_lit (Int64.of_int i) ] ];
                action = A.On_conflict_abort;
              })
        @ [ A.Select_stmt (A.Q_values [ [ A.int_lit 1L ] ]) ]
      in
      (* arbitrary check: statements 0 and n-1 are needed *)
      let needed =
        List.filteri (fun i _ -> i = 0 || i = n - 1) stmts
      in
      let check candidate =
        List.for_all
          (fun s -> List.exists (A.equal_stmt s) candidate)
          needed
      in
      let reduced = Pqs.Reducer.reduce check stmts in
      (* subsequence test *)
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if A.equal_stmt x y then subseq xs' ys' else subseq xs ys'
      in
      check reduced && subseq reduced stmts)

(* ---------- print/parse/execute agreement ---------- *)

(* Execute a random statement stream twice: directly, and through the
   printer+parser.  Every statement must succeed/fail identically and the
   final table contents must match — the printer and parser are
   semantically transparent. *)
let prop_print_parse_execute dialect =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "execute = execute . parse . print (%s)"
         (Dialect.name dialect))
    ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Pqs.Rng.make ~seed:(seed + 77) in
      let direct = Engine.Session.create dialect in
      let reparsed = Engine.Session.create dialect in
      let cfg = Pqs.Gen_db.Config.(make dialect |> with_rng rng) in
      let feed stmt =
        let r1 =
          match Engine.Session.execute direct stmt with
          | Ok _ -> "ok"
          | Error e -> Engine.Errors.show_code e.Engine.Errors.code
          | exception Engine.Errors.Crash _ -> "crash"
        in
        let sql = Sqlast.Sql_printer.stmt dialect stmt in
        let r2 =
          match Sqlparse.Parser.parse_stmt sql with
          | Error e ->
              QCheck.Test.fail_reportf "unparseable %s: %s" sql
                (Sqlparse.Parser.show_error e)
          | Ok stmt' -> (
              match Engine.Session.execute reparsed stmt' with
              | Ok _ -> "ok"
              | Error e -> Engine.Errors.show_code e.Engine.Errors.code
              | exception Engine.Errors.Crash _ -> "crash")
        in
        if r1 <> r2 then
          QCheck.Test.fail_reportf "outcome diverged on %s: %s vs %s" sql r1 r2
      in
      List.iter feed (Pqs.Gen_db.initial_statements cfg);
      List.iter feed (Pqs.Gen_db.fill_statements cfg direct);
      for _ = 1 to 10 do
        List.iter feed (Pqs.Gen_db.random_statements cfg direct)
      done;
      (* final state comparison *)
      let dump session =
        Pqs.Schema_info.tables_of_session session
        |> List.map (fun (ti : Pqs.Schema_info.table_info) ->
               ( ti.Pqs.Schema_info.ti_name,
                 Pqs.Schema_info.rows_of_table session
                   ti.Pqs.Schema_info.ti_name
                 |> List.map (fun row ->
                        Array.to_list (Array.map Value.show row)) ))
      in
      if dump direct <> dump reparsed then
        QCheck.Test.fail_reportf "final states diverged (seed %d)" seed
      else true)

(* ---------- parser robustness ---------- *)

(* the parser is total: any byte soup yields Ok or Error, never an
   exception *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser never raises" ~count:2000
    (QCheck.make
       ~print:(fun s -> String.escaped s)
       QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (0 -- 60)))
    (fun junk ->
      (match Sqlparse.Parser.parse_script junk with
      | Ok _ | Error _ -> ());
      (match Sqlparse.Parser.parse_expr junk with Ok _ | Error _ -> ());
      true)

(* fragments that look like SQL exercise deeper parser paths *)
let prop_parser_total_sqlish =
  let words =
    [| "SELECT"; "FROM"; "WHERE"; "t0"; "c0"; "("; ")"; ","; "'a'"; "1";
       "CREATE"; "TABLE"; "INDEX"; "NOT"; "NULL"; "IS"; "IN"; "LIKE"; "AND";
       "OR"; "BETWEEN"; "CASE"; "WHEN"; "END"; "*"; "="; "<=>"; ";"; "--x";
       "X'ff'"; "CAST"; "AS"; "INT"; "VALUES"; "INSERT"; "INTO" |]
  in
  QCheck.Test.make ~name:"parser never raises (sql-ish soup)" ~count:2000
    (QCheck.make
       ~print:(fun ws -> String.concat " " ws)
       QCheck.Gen.(
         list_size (0 -- 15) (map (fun i -> words.(i mod Array.length words)) small_nat)))
    (fun ws ->
      let text = String.concat " " ws in
      (match Sqlparse.Parser.parse_script text with Ok _ | Error _ -> ());
      true)

let () =
  Alcotest.run "properties"
    [
      ( "compound algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_intersect_self;
            prop_except_self;
            prop_union_all_cardinality;
            prop_union_commutative_cardinality;
          ] );
      ( "select postconditions",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_order_by_sorted;
            prop_distinct_no_duplicates;
            prop_distinct_idempotent;
          ] );
      ( "round trips",
        List.map QCheck_alcotest.to_alcotest [ prop_literal_roundtrip ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest [ prop_runner_deterministic ] );
      ( "reducer",
        List.map QCheck_alcotest.to_alcotest [ prop_reducer_subsequence ] );
      ( "parser robustness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parser_total; prop_parser_total_sqlish ] );
      ( "print/parse/execute",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_print_parse_execute Dialect.Sqlite_like;
            prop_print_parse_execute Dialect.Mysql_like;
            prop_print_parse_execute Dialect.Postgres_like;
          ] );
    ]
