(* The fleet observability contracts:

   - the heartbeat codec: a golden record pins the wire format, decode o
     encode is the identity on the mergeable payload (qcheck), every
     proper prefix of an encoding is rejected (a torn write can never
     decode), unsupported versions are rejected, unknown fields are
     ignored (records can grow);
   - the tailer: complete lines only, a trailing unterminated line is
     buffered until its newline arrives, in-place truncation and
     file replacement both surface as [Rotated] without losing the old
     file's tail, [drain] discards a crashed writer's torn last line;
   - the range queue: chunked leases cover the range exactly once, and a
     requeued tail is served before fresh chunks;
   - the split/merge law: folding synthetic heartbeat deltas into an
     {!Fleet.Aggregate} gives the same {!Fleet.Aggregate.totals} no
     matter how the deltas are split across shards or interleaved
     (qcheck), with findings deduplicated to the first-discovering
     shard;
   - [Telemetry.record_sample]: recording every sample of a snapshot
     equals merging the snapshotted registry;
   - end to end: a real forked 2-worker fleet over a seeded bug catalog
     produces totals exactly equal to a sequential campaign's, including
     when one shard is SIGKILLed mid-lease (the unfinished tail is
     requeued). *)

open Sqlval

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Heartbeat codec                                                      *)

let golden_heartbeat =
  {
    Fleet.Heartbeat.version = 1;
    shard = 3;
    slot = 1;
    seq = 2;
    at = 12.5;
    range_lo = 64;
    range_hi = 96;
    next_seed = 72;
    rounds = 8;
    rounds_per_sec = 41.5;
    counters =
      {
        Fleet.Heartbeat.zero_counters with
        Fleet.Heartbeat.databases = 8;
        pivots = 32;
        queries = 40;
        statements = 120;
        interp_failures = 1;
        negative_checks = 4;
        plan_checks = 2;
        const_checks = 3;
        const_divergences = 1;
        truth_true = 30;
        truth_false = 8;
        truth_unknown = 2;
      };
    frontier =
      Frontier.of_entries
        [
          ("shape:join", { Frontier.hits = 5; first_seed = 64 });
          ("expr:like", { Frontier.hits = 2; first_seed = 65 });
        ];
    reports =
      [
        {
          Fleet.Heartbeat.rm_fingerprint = "0123abcd";
          rm_oracle = "containment";
          rm_seed = 65;
          rm_bundle = Some "bundles/seed-65";
        };
        {
          Fleet.Heartbeat.rm_fingerprint = "ff00";
          rm_oracle = "error";
          rm_seed = 70;
          rm_bundle = None;
        };
      ];
    telemetry =
      [
        {
          Telemetry.s_name = "pqs_rounds_total";
          s_labels = [];
          s_value = Telemetry.Counter 8;
        };
        {
          Telemetry.s_name = "pqs_shard_gauge";
          s_labels = [ ("k", "v") ];
          s_value = Telemetry.Gauge 2.5;
        };
      ];
  }

let golden_line =
  "{\"type\":\"heartbeat\",\"v\":1,\"shard\":3,\"slot\":1,\"seq\":2,\
   \"at\":12.500,\"range\":[64,96],\"next\":72,\"rounds\":8,\"rps\":41.5,\
   \"stats\":{\"databases\":8,\"pivots\":32,\"queries\":40,\
   \"statements\":120,\"interp_failures\":1,\"false_positives\":0,\
   \"negative_checks\":4,\"lint_checks\":0,\"lint_diagnostics\":0,\
   \"plan_checks\":2,\"plan_divergences\":0,\"const_checks\":3,\
   \"const_divergences\":1,\"truth_true\":30,\"truth_false\":8,\
   \"truth_unknown\":2},\"points\":[{\"p\":\"expr:like\",\"h\":2,\"s\":65},\
   {\"p\":\"shape:join\",\"h\":5,\"s\":64}],\"reports\":[{\"fp\":\
   \"0123abcd\",\"oracle\":\"containment\",\"seed\":65,\"bundle\":\
   \"bundles/seed-65\"},{\"fp\":\"ff00\",\"oracle\":\"error\",\"seed\":70}],\
   \"telemetry\":[{\"name\":\"pqs_rounds_total\",\"labels\":{},\
   \"type\":\"counter\",\"value\":8},{\"name\":\"pqs_shard_gauge\",\
   \"labels\":{\"k\":\"v\"},\"type\":\"gauge\",\"value\":2.5}]}"

let test_golden () =
  check Alcotest.string "encoding is pinned" golden_line
    (Fleet.Heartbeat.encode golden_heartbeat);
  match Fleet.Heartbeat.decode golden_line with
  | Error e -> Alcotest.failf "golden line failed to decode: %s" e
  | Ok hb ->
      checkb "payload round-trips" true
        (Fleet.Heartbeat.equal_payload golden_heartbeat hb);
      check Alcotest.int "shard" 3 hb.Fleet.Heartbeat.shard;
      check Alcotest.int "next watermark" 72 hb.Fleet.Heartbeat.next_seed;
      check Alcotest.int "rounds" 8 hb.Fleet.Heartbeat.rounds;
      check
        (Alcotest.float 1e-9)
        "rate" 41.5 hb.Fleet.Heartbeat.rounds_per_sec;
      checkb "telemetry round-trips" true
        (hb.Fleet.Heartbeat.telemetry = golden_heartbeat.Fleet.Heartbeat.telemetry)

let test_partial_writes () =
  let line = Fleet.Heartbeat.encode golden_heartbeat in
  for len = 0 to String.length line - 1 do
    match Fleet.Heartbeat.decode (String.sub line 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "torn prefix of %d bytes decoded" len
  done

let test_versioning () =
  let future =
    Fleet.Heartbeat.encode
      { golden_heartbeat with Fleet.Heartbeat.version = 99 }
  in
  (match Fleet.Heartbeat.decode future with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsupported version accepted");
  (* unknown fields are ignored so records can grow *)
  let grown =
    "{\"type\":\"heartbeat\",\"future_field\":[1,2],"
    ^ String.sub golden_line 1 (String.length golden_line - 1)
  in
  match Fleet.Heartbeat.decode grown with
  | Error e -> Alcotest.failf "grown record rejected: %s" e
  | Ok hb ->
      checkb "grown record keeps payload" true
        (Fleet.Heartbeat.equal_payload golden_heartbeat hb)

(* floats chosen to survive the codec's decimal formatting *)
let gen_heartbeat =
  let open QCheck.Gen in
  let name =
    oneofl
      [ "shape:join"; "expr:like\"quoted\""; "plan\\path"; "a b\nc"; "x" ]
  in
  let small = int_bound 50 in
  let* shard = int_bound 9 in
  let* slot = int_bound 3 in
  let* seq = int_bound 20 in
  let* at8 = int_bound 10_000 in
  let* lo = int_bound 100 in
  let* span = int_bound 64 in
  let* rounds = int_bound 32 in
  let* rps4 = int_bound 2_000 in
  let* counts = list_size (return 16) small in
  let* points =
    list_size (int_bound 6)
      (let* p = name in
       let* hits = int_range 1 9 in
       let* first_seed = int_bound 100 in
       return (p, { Frontier.hits; first_seed }))
  in
  let* reports =
    list_size (int_bound 3)
      (let* fp = string_size ~gen:(char_range 'a' 'f') (return 8) in
       let* oracle = oneofl [ "containment"; "error"; "crash" ] in
       let* seed = int_bound 100 in
       let* bundle = opt (oneofl [ "b/1"; "dir with space/2" ]) in
       return
         {
           Fleet.Heartbeat.rm_fingerprint = fp;
           rm_oracle = oracle;
           rm_seed = seed;
           rm_bundle = bundle;
         })
  in
  let* samples =
    list_size (int_bound 3)
      (oneof
         [
           (let* v = small in
            return
              {
                Telemetry.s_name = "pqs_rounds_total";
                s_labels = [];
                s_value = Telemetry.Counter v;
              });
           (let* v4 = int_bound 400 in
            return
              {
                Telemetry.s_name = "pqs_gauge";
                s_labels = [ ("dialect", "sqlite") ];
                s_value = Telemetry.Gauge (float_of_int v4 /. 4.0);
              });
           (let* c1 = small in
            let* c2 = small in
            return
              {
                Telemetry.s_name = "pqs_round_seconds";
                s_labels = [];
                s_value =
                  Telemetry.Histogram
                    {
                      buckets = [ (0.25, c1); (0.5, c1 + c2) ];
                      sum = float_of_int (c1 + c2) /. 4.0;
                      count = c1 + c2;
                    };
              });
         ])
  in
  let counters =
    match counts with
    | [ a; b; c; d; e; f; g; h; i; j; k; l; m; n; o; p ] ->
        {
          Fleet.Heartbeat.databases = a;
          pivots = b;
          queries = c;
          statements = d;
          interp_failures = e;
          false_positives = f;
          negative_checks = g;
          lint_checks = h;
          lint_diagnostics = i;
          plan_checks = j;
          plan_divergences = k;
          const_checks = l;
          const_divergences = m;
          truth_true = n;
          truth_false = o;
          truth_unknown = p;
        }
    | _ -> Fleet.Heartbeat.zero_counters
  in
  return
    {
      Fleet.Heartbeat.version = Fleet.Heartbeat.current_version;
      shard;
      slot;
      seq;
      at = float_of_int at8 /. 8.0;
      range_lo = lo;
      range_hi = lo + span;
      next_seed = lo + min span rounds;
      rounds;
      rounds_per_sec = float_of_int rps4 /. 4.0;
      counters;
      frontier = Frontier.of_entries points;
      reports;
      telemetry = samples;
    }

let test_roundtrip =
  QCheck.Test.make ~count:300 ~name:"decode o encode = id"
    (QCheck.make gen_heartbeat) (fun hb ->
      match Fleet.Heartbeat.decode (Fleet.Heartbeat.encode hb) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok hb' ->
          Fleet.Heartbeat.equal_payload hb hb'
          && hb'.Fleet.Heartbeat.shard = hb.Fleet.Heartbeat.shard
          && hb'.Fleet.Heartbeat.slot = hb.Fleet.Heartbeat.slot
          && hb'.Fleet.Heartbeat.seq = hb.Fleet.Heartbeat.seq
          && hb'.Fleet.Heartbeat.range_lo = hb.Fleet.Heartbeat.range_lo
          && hb'.Fleet.Heartbeat.range_hi = hb.Fleet.Heartbeat.range_hi
          && hb'.Fleet.Heartbeat.next_seed = hb.Fleet.Heartbeat.next_seed
          && hb'.Fleet.Heartbeat.rounds = hb.Fleet.Heartbeat.rounds
          && hb'.Fleet.Heartbeat.rounds_per_sec
             = hb.Fleet.Heartbeat.rounds_per_sec
          && hb'.Fleet.Heartbeat.at = hb.Fleet.Heartbeat.at
          && hb'.Fleet.Heartbeat.reports = hb.Fleet.Heartbeat.reports
          && hb'.Fleet.Heartbeat.telemetry = hb.Fleet.Heartbeat.telemetry)

(* ------------------------------------------------------------------ *)
(* Tailer                                                               *)

let temp_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqs-test-tail-%d-%s" (Unix.getpid ()) tag)

let append path s =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc s;
  close_out oc

let lines events =
  List.filter_map
    (function Fleet.Tail.Line l -> Some l | Fleet.Tail.Rotated -> None)
    events

let rotations events =
  List.length (List.filter (fun e -> e = Fleet.Tail.Rotated) events)

let test_tail_partial () =
  let path = temp_path "partial" in
  if Sys.file_exists path then Sys.remove path;
  let t = Fleet.Tail.create path in
  check (Alcotest.list Alcotest.string) "missing file: no lines" []
    (lines (Fleet.Tail.poll t));
  append path "alpha\nbeta\n";
  check
    (Alcotest.list Alcotest.string)
    "complete lines" [ "alpha"; "beta" ]
    (lines (Fleet.Tail.poll t));
  append path "gam";
  check (Alcotest.list Alcotest.string) "torn line withheld" []
    (lines (Fleet.Tail.poll t));
  append path "ma\n";
  check
    (Alcotest.list Alcotest.string)
    "torn line completed" [ "gamma" ]
    (lines (Fleet.Tail.poll t));
  append path "delta\ntorn-tail";
  let drained = Fleet.Tail.drain t in
  check
    (Alcotest.list Alcotest.string)
    "drain discards the torn tail" [ "delta" ] (lines drained);
  Fleet.Tail.close t;
  Sys.remove path

let test_tail_truncation () =
  let path = temp_path "trunc" in
  if Sys.file_exists path then Sys.remove path;
  append path "one\ntwo\n";
  let t = Fleet.Tail.create path in
  check (Alcotest.list Alcotest.string) "initial" [ "one"; "two" ]
    (lines (Fleet.Tail.poll t));
  (* in-place truncation: the writer restarted its file *)
  let oc = open_out path in
  output_string oc "fresh\n";
  close_out oc;
  let ev = Fleet.Tail.poll t in
  checkb "truncation surfaces Rotated" true (rotations ev >= 1);
  check (Alcotest.list Alcotest.string) "fresh content" [ "fresh" ] (lines ev);
  Fleet.Tail.close t;
  Sys.remove path

let test_tail_rotation () =
  let path = temp_path "rot" in
  let old = path ^ ".1" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; old ];
  append path "kept\n";
  let t = Fleet.Tail.create path in
  check (Alcotest.list Alcotest.string) "initial" [ "kept" ]
    (lines (Fleet.Tail.poll t));
  (* logrotate: rename, then a new file appears at the same path *)
  append path "late\n";
  Sys.rename path old;
  append path "rotated\n";
  let ev = Fleet.Tail.poll t in
  checkb "rotation surfaces Rotated" true (rotations ev = 1);
  check
    (Alcotest.list Alcotest.string)
    "old tail drained before the new file" [ "late"; "rotated" ] (lines ev);
  Fleet.Tail.close t;
  List.iter Sys.remove [ path; old ]

(* ------------------------------------------------------------------ *)
(* Range queue                                                          *)

let test_range_queue () =
  let q = Fleet.Range_queue.create ~chunk:10 ~lo:0 ~hi:25 in
  check Alcotest.int "pending covers the range" 25
    (Fleet.Range_queue.pending q);
  let l1 = Fleet.Range_queue.lease q in
  let l2 = Fleet.Range_queue.lease q in
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "first chunk"
    (Some (0, 10))
    l1;
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "second chunk"
    (Some (10, 20))
    l2;
  (* a killed shard's unfinished tail jumps the queue *)
  Fleet.Range_queue.requeue q ~lo:13 ~hi:20;
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "requeued tail first"
    (Some (13, 20))
    (Fleet.Range_queue.lease q);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "then the last short chunk"
    (Some (20, 25))
    (Fleet.Range_queue.lease q);
  Fleet.Range_queue.requeue q ~lo:5 ~hi:5;
  checkb "empty requeue ignored" true (Fleet.Range_queue.is_empty q);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "exhausted" None (Fleet.Range_queue.lease q)

(* ------------------------------------------------------------------ *)
(* Split/merge law                                                      *)

(* cut [deltas] into [cuts]-determined consecutive batches and turn each
   batch into one heartbeat of the given shard *)
let heartbeats_of_batches ~shard deltas cuts =
  let batches =
    List.fold_left
      (fun (batches, cur, i) d ->
        if List.mem i cuts && cur <> [] then
          (List.rev cur :: batches, [ d ], i + 1)
        else (batches, d :: cur, i + 1))
      ([], [], 0) deltas
    |> fun (batches, cur, _) ->
    List.rev (if cur = [] then batches else List.rev cur :: batches)
  in
  List.mapi
    (fun seq batch ->
      let counters =
        List.fold_left
          (fun acc (c, _, _) -> Fleet.Heartbeat.add_counters acc c)
          Fleet.Heartbeat.zero_counters batch
      in
      let frontier =
        Frontier.union_all (List.map (fun (_, f, _) -> f) batch)
      in
      let reports = List.concat_map (fun (_, _, r) -> r) batch in
      {
        Fleet.Heartbeat.version = Fleet.Heartbeat.current_version;
        shard;
        slot = shard mod 2;
        seq;
        at = float_of_int seq;
        range_lo = 0;
        range_hi = List.length deltas;
        next_seed = 0;
        rounds = List.length batch;
        rounds_per_sec = 1.0;
        counters;
        frontier;
        reports;
        telemetry = [];
      })
    batches

let gen_split_case =
  let open QCheck.Gen in
  let* n = int_range 1 24 in
  let* deltas =
    list_size (return n)
      (let* dbs = int_range 1 3 in
       let* stmts = int_bound 20 in
       let* point = oneofl [ "a"; "b"; "c"; "d" ] in
       let* seed = int_bound 50 in
       let* report =
         opt
           (let* fp = oneofl [ "fp1"; "fp2"; "fp3" ] in
            return
              {
                Fleet.Heartbeat.rm_fingerprint = fp;
                rm_oracle = "containment";
                rm_seed = seed;
                rm_bundle = None;
              })
       in
       return
         ( {
             Fleet.Heartbeat.zero_counters with
             Fleet.Heartbeat.databases = dbs;
             statements = stmts;
           },
           Frontier.of_points ~seed [ point ],
           Option.to_list report ))
  in
  let* cuts = list_size (int_bound 6) (int_bound (max 1 (n - 1))) in
  let* split_at = int_bound n in
  return (deltas, cuts, split_at)

let feed_all agg hbs =
  List.iteri (fun i hb -> Fleet.Aggregate.feed agg ~now:(float_of_int i) hb) hbs

let test_split_merge =
  QCheck.Test.make ~count:200
    ~name:"aggregate totals are split-invariant"
    (QCheck.make gen_split_case) (fun (deltas, cuts, split_at) ->
      let dialect = Dialect.Sqlite_like in
      (* reference: everything as one shard, one heartbeat per delta *)
      let ref_agg = Fleet.Aggregate.create ~dialect in
      feed_all ref_agg (heartbeats_of_batches ~shard:1 deltas []);
      (* split: two shards with arbitrary batch boundaries, interleaved *)
      let left = List.filteri (fun i _ -> i < split_at) deltas in
      let right = List.filteri (fun i _ -> i >= split_at) deltas in
      let h1 = heartbeats_of_batches ~shard:1 left cuts in
      let h2 = heartbeats_of_batches ~shard:2 right cuts in
      let rec interleave a b =
        match (a, b) with
        | [], rest | rest, [] -> rest
        | x :: xs, y :: ys -> x :: y :: interleave xs ys
      in
      let split_agg = Fleet.Aggregate.create ~dialect in
      feed_all split_agg (interleave h1 h2);
      let r = Fleet.Aggregate.totals ref_agg in
      let s = Fleet.Aggregate.totals split_agg in
      if not (Fleet.Aggregate.equal_totals r s) then
        QCheck.Test.fail_reportf "totals diverge:\n%s"
          (String.concat "\n" (Fleet.Aggregate.diff_totals r s))
      else true)

let test_finding_dedup () =
  let dialect = Dialect.Sqlite_like in
  let agg = Fleet.Aggregate.create ~dialect in
  let report seed =
    {
      Fleet.Heartbeat.rm_fingerprint = "same-bug";
      rm_oracle = "containment";
      rm_seed = seed;
      rm_bundle = None;
    }
  in
  let delta shard seed =
    List.hd
      (heartbeats_of_batches ~shard
         [ (Fleet.Heartbeat.zero_counters, Frontier.empty, [ report seed ]) ]
         [])
  in
  Fleet.Aggregate.feed agg ~now:0.0 (delta 2 40);
  Fleet.Aggregate.feed agg ~now:1.0 (delta 1 10);
  Fleet.Aggregate.feed agg ~now:2.0 (delta 3 90);
  check Alcotest.int "one distinct finding" 1
    (Fleet.Aggregate.distinct_reports agg);
  check Alcotest.int "three total reports" 3
    (Fleet.Aggregate.total_reports agg);
  match Fleet.Aggregate.findings agg with
  | [ f ] ->
      check Alcotest.int "first-discovering shard wins" 2
        f.Fleet.Aggregate.f_shard;
      check Alcotest.int "its seed is kept" 40 f.Fleet.Aggregate.f_seed;
      check Alcotest.int "occurrences counted" 3 f.Fleet.Aggregate.f_count
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_record_sample_law () =
  let src = Telemetry.create () in
  Telemetry.inc src ~by:7 "pqs_rounds_total";
  Telemetry.inc src ~labels:[ ("dialect", "sqlite") ] ~by:3 "pqs_hits";
  Telemetry.set_gauge src "pqs_rate" 12.5;
  List.iter
    (fun v -> Telemetry.observe src "pqs_round_seconds" v)
    [ 0.001; 0.02; 0.3; 5.0 ];
  (* recording every sample of a snapshot = merging the registry *)
  let via_samples = Telemetry.create () in
  Telemetry.inc via_samples ~by:2 "pqs_rounds_total";
  List.iter (Telemetry.record_sample via_samples) (Telemetry.snapshot src);
  let via_merge = Telemetry.create () in
  Telemetry.inc via_merge ~by:2 "pqs_rounds_total";
  Telemetry.merge_into ~dst:via_merge ~src;
  checkb "record_sample snapshot = merge_into" true
    (Telemetry.snapshot via_samples = Telemetry.snapshot via_merge)

(* ------------------------------------------------------------------ *)
(* End to end                                                           *)

let fleet_dir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqs-test-fleet-%d-%s" (Unix.getpid ()) tag)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let run_reference ~bugs ~dialect ~seed_lo ~seed_hi =
  let config = Pqs.Runner.Config.make ~bugs dialect in
  let c = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
  Fleet.Aggregate.totals_of_stats
    ~fingerprint:(fun r ->
      Pqs.Bug_report.fingerprint (Pqs.Reducer.reduce_report r ~bugs))
    c.Pqs.Campaign.stats

let test_fleet_end_to_end () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let seed_lo = 1 and seed_hi = 25 in
  let reference = run_reference ~bugs ~dialect ~seed_lo ~seed_hi in
  let dir = fleet_dir "e2e" in
  rm_rf dir;
  let fc =
    {
      (Fleet.Supervisor.default ~dir) with
      Fleet.Supervisor.workers = 2;
      chunk = 8;
      heartbeat_every = 4;
    }
  in
  let r =
    Fleet.Supervisor.run fc
      (Pqs.Runner.Config.make ~bugs dialect)
      ~seed_lo ~seed_hi
  in
  let merged = Fleet.Aggregate.totals r.Fleet.Supervisor.agg in
  if not (Fleet.Aggregate.equal_totals reference merged) then
    Alcotest.failf "fleet totals diverge from the sequential reference:\n%s"
      (String.concat "\n" (Fleet.Aggregate.diff_totals reference merged));
  check Alcotest.int "no decode errors" 0 r.Fleet.Supervisor.decode_errors;
  checkb "snapshots exported" true
    (Sys.file_exists (Filename.concat dir "fleet.json")
    && Sys.file_exists (Filename.concat dir "metrics.prom"));
  rm_rf dir

let test_fleet_kill_recovery () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let seed_lo = 1 and seed_hi = 65 in
  let reference = run_reference ~bugs ~dialect ~seed_lo ~seed_hi in
  let dir = fleet_dir "chaos" in
  rm_rf dir;
  (* long leases, early kill, tight poll: the SIGKILL must land while
     the victim still has an unfinished tail to requeue *)
  let fc =
    {
      (Fleet.Supervisor.default ~dir) with
      Fleet.Supervisor.workers = 2;
      chunk = 32;
      heartbeat_every = 2;
      poll = 0.005;
      chaos_kill_after = Some 4;
    }
  in
  let r =
    Fleet.Supervisor.run fc
      (Pqs.Runner.Config.make ~bugs dialect)
      ~seed_lo ~seed_hi
  in
  check Alcotest.int "exactly one chaos kill" 1 r.Fleet.Supervisor.chaos_kills;
  checkb "the unfinished tail was requeued" true
    (r.Fleet.Supervisor.requeued_seeds > 0);
  let merged = Fleet.Aggregate.totals r.Fleet.Supervisor.agg in
  if not (Fleet.Aggregate.equal_totals reference merged) then
    Alcotest.failf "post-kill totals diverge (lost or double-merged seeds):\n%s"
      (String.concat "\n" (Fleet.Aggregate.diff_totals reference merged));
  rm_rf dir

let () =
  Alcotest.run "fleet"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "golden record" `Quick test_golden;
          Alcotest.test_case "torn prefixes rejected" `Quick
            test_partial_writes;
          Alcotest.test_case "versioning" `Quick test_versioning;
          QCheck_alcotest.to_alcotest test_roundtrip;
        ] );
      ( "tail",
        [
          Alcotest.test_case "partial lines" `Quick test_tail_partial;
          Alcotest.test_case "truncation" `Quick test_tail_truncation;
          Alcotest.test_case "rotation" `Quick test_tail_rotation;
        ] );
      ( "range queue",
        [ Alcotest.test_case "lease and requeue" `Quick test_range_queue ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest test_split_merge;
          Alcotest.test_case "finding dedup" `Quick test_finding_dedup;
          Alcotest.test_case "record_sample law" `Quick
            test_record_sample_law;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "exact merge" `Quick test_fleet_end_to_end;
          Alcotest.test_case "kill recovery" `Quick test_fleet_kill_recovery;
        ] );
    ]
