(* The plan-space differential oracle's contracts:

   - enumeration: [Planner.enumerate] puts the full scan first, always
     contains the planner's default choice, never repeats a signature,
     and is deterministic; [Plan_diff.enumerate_forced] is deterministic
     and empty on order-unstable queries (LIMIT/OFFSET);
   - soundness: on the correct engine every forced plan produces the
     default plan's result multiset — checked directly on a fixture and
     over a 1,000-seed generated-database sweep (zero divergences), with
     the per-database join-order witnesses included;
   - detection: each targeted planner bug (skip-scan/DISTINCT, OR-union
     dedup, DESC-index range) diverges on a bounded seed sweep, on seeds
     where the containment oracle stays silent ([exclusive_seeds]); the
     cross-oracle matrix over the whole injected catalog finds every bug
     with at least one oracle;
   - golden: forced-plan EXPLAIN carries the "(forced)" / "SWAP JOIN
     ORDER (forced)" annotations, the divergence record and message name
     the witness and both cardinalities, and a plan_diff repro bundle
     round-trips through [Trace.Bundle] and [Replay.check_file];
   - stats monoids: [Metamorphic.merge_stats] and [Difftest.merge_stats]
     obey the same merge laws as [Stats.merge], and the plan-diff
     counters merge additively. *)

open Sqlval
module A = Sqlast.Ast

(* ---------- helpers ---------- *)

let parse_sql sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok s -> s
  | Error e -> Alcotest.fail (Sqlparse.Parser.show_error e)

let parse_query sql =
  match parse_sql sql with
  | A.Select_stmt q -> q
  | _ -> Alcotest.fail ("not a SELECT: " ^ sql)

let exec session sql =
  match Engine.Session.execute session (parse_sql sql) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.Errors.show e)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Trace.mkdir_p path;
  path

let contains_sub sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

(* the shared fixture: one table with a composite, a DESC and a plain
   index (a multi-path plan space) plus a second table for joins *)
let fixture () =
  let session = Engine.Session.create Dialect.Sqlite_like in
  List.iter (exec session)
    [
      "CREATE TABLE t0(c0 INT, c1 TEXT)";
      "CREATE INDEX i_comp ON t0(c0, c1)";
      "CREATE INDEX i_desc ON t0(c0 DESC)";
      "CREATE INDEX i_one ON t0(c1)";
      "INSERT INTO t0(c0, c1) VALUES (1,'a'), (2,'b'), (3,'c'), (2,'a')";
      "CREATE TABLE t1(d0 INT)";
      "INSERT INTO t1(d0) VALUES (1), (2)";
    ];
  session

let fixture_queries =
  [
    "SELECT DISTINCT c0 FROM t0 WHERE c0 = 2";
    "SELECT * FROM t0 WHERE c0 > 1";
    "SELECT c0 FROM t0 WHERE c0 = 2 OR c1 = 'a'";
    "SELECT * FROM t0, t1 WHERE c0 = d0";
  ]

(* a generated database in the style of the campaign rounds *)
let gen_session seed =
  let dialect = Dialect.Sqlite_like in
  let session = Engine.Session.create ~seed dialect in
  let cfg = Pqs.Gen_db.Config.make ~seed dialect in
  let run stmt =
    match Engine.Session.execute session stmt with
    | Ok _ | Error _ -> ()
    | exception Engine.Errors.Crash _ -> ()
  in
  List.iter run (Pqs.Gen_db.initial_statements cfg);
  List.iter run (Pqs.Gen_db.fill_statements cfg session);
  session

(* every access path of one table's scan site, via the same environment
   the oracle builds *)
let enumerate_paths session name ~where =
  let catalog = Engine.Session.catalog session in
  match Storage.Catalog.find_table catalog name with
  | None -> Alcotest.fail ("no such table " ^ name)
  | Some ts ->
      let schema = ts.Storage.Catalog.schema in
      let env =
        {
          (Engine.Executor.planner_env (Engine.Session.ctx session) schema
             ~alias:name)
          with
          Engine.Eval.coverage = None;
        }
      in
      ( Engine.Planner.enumerate env catalog schema ~where,
        Engine.Planner.choose env catalog schema ~where )

(* the scan-site WHERE shapes the property checks walk: no filter, an
   equality and a strict range on the first column *)
let where_shapes session name =
  match
    Pqs.Schema_info.tables_of_session session
    |> List.find_opt (fun (ti : Pqs.Schema_info.table_info) ->
           ti.Pqs.Schema_info.ti_name = name)
  with
  | None | Some { Pqs.Schema_info.ti_columns = []; _ } -> [ None ]
  | Some ti ->
      let c0 =
        (List.hd ti.Pqs.Schema_info.ti_columns).Pqs.Schema_info.ci_name
      in
      let v =
        match Pqs.Schema_info.rows_of_table session name with
        | row :: _ when Array.length row > 0 -> row.(0)
        | _ -> Value.Null
      in
      [
        None;
        Some (A.Binary (A.Eq, A.col c0, A.Lit v));
        Some (A.Binary (A.Gt, A.col c0, A.Lit v));
      ]

let canon (rs : Engine.Executor.result_set) =
  List.sort String.compare
    (List.map Engine.Executor.row_key rs.Engine.Executor.rs_rows)

(* ---------- enumeration properties ---------- *)

let each_site session f =
  List.iter
    (fun (ti : Pqs.Schema_info.table_info) ->
      let name = ti.Pqs.Schema_info.ti_name in
      List.iter (fun where -> f name where) (where_shapes session name))
    (Pqs.Schema_info.tables_of_session session)

let test_enumerate_full_scan () =
  let check session =
    each_site session (fun name where ->
        match enumerate_paths session name ~where with
        | Engine.Planner.Full_scan :: _, _ -> ()
        | _ -> Alcotest.fail ("full scan not first for " ^ name))
  in
  check (fixture ());
  for seed = 1 to 25 do
    check (gen_session seed)
  done

let test_enumerate_contains_default () =
  let check session =
    each_site session (fun name where ->
        let paths, default = enumerate_paths session name ~where in
        let sigs = List.map Engine.Planner.signature paths in
        Alcotest.(check bool)
          ("default choice enumerated for " ^ name)
          true
          (List.mem (Engine.Planner.signature default) sigs);
        Alcotest.(check int)
          ("no repeated signature for " ^ name)
          (List.length sigs)
          (List.length (List.sort_uniq String.compare sigs)))
  in
  check (fixture ());
  for seed = 1 to 25 do
    check (gen_session seed)
  done

let test_enumerate_deterministic () =
  let session = fixture () in
  List.iter
    (fun sql ->
      let q = parse_query sql in
      let show l = List.map Engine.Executor.show_forced l in
      Alcotest.(check (list string))
        ("same forces twice for " ^ sql)
        (show (Pqs.Plan_diff.enumerate_forced session q))
        (show (Pqs.Plan_diff.enumerate_forced session q)))
    fixture_queries;
  each_site session (fun name where ->
      let paths1, _ = enumerate_paths session name ~where in
      let paths2, _ = enumerate_paths session name ~where in
      Alcotest.(check (list string))
        ("same enumeration twice for " ^ name)
        (List.map Engine.Planner.signature paths1)
        (List.map Engine.Planner.signature paths2))

let test_stability_guard () =
  let session = fixture () in
  let stable sql = Pqs.Plan_diff.query_stable (parse_query sql) in
  Alcotest.(check bool) "plain select is stable" true
    (stable "SELECT * FROM t0 WHERE c0 > 1");
  Alcotest.(check bool) "LIMIT breaks stability" false
    (stable "SELECT * FROM t0 LIMIT 2");
  Alcotest.(check bool) "order-insensitive aggregate is stable" true
    (stable "SELECT COUNT(*) FROM t0");
  Alcotest.(check bool) "no forces for an unstable query" true
    (Pqs.Plan_diff.enumerate_forced session
       (parse_query "SELECT * FROM t0 WHERE c0 > 1 LIMIT 2")
    = []);
  Alcotest.(check bool) "forces exist for the stable equivalent" true
    (Pqs.Plan_diff.enumerate_forced session
       (parse_query "SELECT * FROM t0 WHERE c0 > 1")
    <> [])

(* ---------- soundness on the correct engine ---------- *)

let test_forced_equals_default () =
  let session = fixture () in
  let compared = ref 0 in
  List.iter
    (fun sql ->
      let q = parse_query sql in
      match Engine.Session.query session q with
      | Error e -> Alcotest.fail (Engine.Errors.show e)
      | Ok default ->
          List.iter
            (fun force ->
              incr compared;
              match Engine.Session.query_forced session ~force q with
              | Error e -> Alcotest.fail (Engine.Errors.show e)
              | Ok forced ->
                  Alcotest.(check (list string))
                    (Printf.sprintf "[%s] agrees on %s"
                       (Engine.Executor.show_forced force)
                       sql)
                    (canon default) (canon forced))
            (Pqs.Plan_diff.enumerate_forced ~max_plans:16 session q))
    fixture_queries;
  Alcotest.(check bool) "fixture exercises several plans" true (!compared >= 4)

let test_bug_free_sweep () =
  let r =
    Pqs.Plan_diff.sweep ~seed_lo:1 ~seed_hi:1000 Dialect.Sqlite_like
  in
  Alcotest.(check int) "seeds swept" 1000 r.Pqs.Plan_diff.pd_seeds;
  Alcotest.(check bool) "queries checked" true
    (r.Pqs.Plan_diff.pd_queries > 1000);
  Alcotest.(check bool) "forced plans executed" true
    (r.Pqs.Plan_diff.pd_plans > 1000);
  Alcotest.(check (list (pair int string)))
    "no divergence on the correct engine" []
    r.Pqs.Plan_diff.pd_divergences

let test_sweep_deterministic () =
  let run () =
    Pqs.Plan_diff.sweep ~seed_lo:1 ~seed_hi:40 Dialect.Sqlite_like
  in
  Alcotest.(check bool) "two identical sweeps" true (run () = run ())

let test_join_orders () =
  let session = fixture () in
  let oc = Pqs.Plan_diff.check_join_orders session in
  Alcotest.(check bool) "join witnesses executed" true
    (oc.Pqs.Plan_diff.oc_plans >= 1);
  Alcotest.(check bool) "both join orders agree" true
    (oc.Pqs.Plan_diff.oc_divergence = None);
  let empty = Engine.Session.create Dialect.Sqlite_like in
  let oc = Pqs.Plan_diff.check_join_orders empty in
  Alcotest.(check int) "no tables, no witnesses" 0 oc.Pqs.Plan_diff.oc_plans

(* ---------- detection ---------- *)

let sweep_bug bug =
  Pqs.Plan_diff.sweep
    ~bugs:(Engine.Bug.set_of_list [ bug ])
    ~seed_lo:1 ~seed_hi:300 Dialect.Sqlite_like

let test_detects bug () =
  let r = sweep_bug bug in
  Alcotest.(check bool)
    (Engine.Bug.show bug ^ " diverges on the sweep")
    true
    (r.Pqs.Plan_diff.pd_divergences <> []);
  Alcotest.(check bool)
    (Engine.Bug.show bug ^ " has containment-silent seeds")
    true
    (Pqs.Plan_diff.exclusive_seeds r <> [])

let test_detection_matrix () =
  (* the cross-oracle matrix: hunting the whole injected catalog, every
     bug class must fall to at least one oracle *)
  let d = Experiments.Detection.run_all ~budget:30000 ~seeds:[ 7; 77; 777 ] () in
  let missed =
    Experiments.Detection.missed d
    |> List.map (fun (o : Experiments.Detection.outcome) ->
           Engine.Bug.show o.Experiments.Detection.bug)
  in
  Alcotest.(check (list string)) "no bug escapes every oracle" [] missed;
  let labels =
    List.filter_map
      (fun (o : Experiments.Detection.outcome) ->
        Option.map
          (fun (r : Pqs.Bug_report.t) ->
            Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)
          o.Experiments.Detection.report)
      d
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " oracle contributes") true (List.mem l labels))
    [ "Contains"; "Error"; "SEGFAULT" ]

(* ---------- golden: forced-plan EXPLAIN ---------- *)

let test_explain_forced () =
  let session = fixture () in
  let q = parse_query "SELECT DISTINCT c0 FROM t0 WHERE c0 = 2" in
  Alcotest.(check (list string)) "default plan"
    [ "SCAN t0 USING index-eq(i_desc)"; "DISTINCT" ]
    (Engine.Session.plan_lines session q);
  match Pqs.Plan_diff.enumerate_forced session q with
  | [ force ] ->
      Alcotest.(check string) "the non-default path is the full scan"
        "t0=full-scan"
        (Engine.Executor.show_forced force);
      Alcotest.(check (list string)) "forced plan is annotated"
        [ "SCAN t0 USING full-scan (forced)"; "DISTINCT" ]
        (Engine.Session.plan_lines ~force session q)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one non-default plan, got %d"
           (List.length l))

let test_explain_forced_swap () =
  let session = fixture () in
  let q = parse_query "SELECT * FROM t0, t1 WHERE c0 = d0" in
  let swap = { Engine.Executor.f_sites = []; f_swap_join = true } in
  Alcotest.(check (list string)) "default join plan"
    [ "SCAN t0 USING full-scan"; "SCAN t1 USING full-scan" ]
    (Engine.Session.plan_lines session q);
  Alcotest.(check (list string)) "swapped join plan is annotated"
    [
      "SCAN t0 USING full-scan";
      "SCAN t1 USING full-scan";
      "SWAP JOIN ORDER (forced)";
    ]
    (Engine.Session.plan_lines ~force:swap session q)

(* ---------- golden: the divergence record and repro bundle ---------- *)

(* the minimal DESC-index range repro: the buggy strict lower bound walks
   the descending index the wrong way and returns nothing *)
let desc_repro_script =
  [
    "CREATE TABLE t0(c0 INT, c1 TEXT)";
    "CREATE INDEX i_desc ON t0(c0 DESC)";
    "INSERT INTO t0(c0, c1) VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')";
    "SELECT * FROM t0 WHERE c0 > 1";
  ]

let desc_bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_desc_index_range ]

let desc_divergence () =
  let session = Engine.Session.create ~bugs:desc_bugs Dialect.Sqlite_like in
  List.iter (fun sql -> ignore (Engine.Session.execute session (parse_sql sql)))
    desc_repro_script;
  match
    (Pqs.Plan_diff.check_query session
       (parse_query "SELECT * FROM t0 WHERE c0 > 1"))
      .Pqs.Plan_diff.oc_divergence
  with
  | Some d -> d
  | None -> Alcotest.fail "DESC-index repro did not diverge"

let test_divergence_fields () =
  let d = desc_divergence () in
  Alcotest.(check string) "witness SQL" "SELECT * FROM t0 AS t0 WHERE (c0 > 1)"
    d.Pqs.Plan_diff.dv_witness;
  Alcotest.(check string) "disagreeing plan" "t0=full-scan"
    (Engine.Executor.show_forced d.Pqs.Plan_diff.dv_forced);
  Alcotest.(check int) "buggy default loses the rows" 0
    d.Pqs.Plan_diff.dv_default_rows;
  Alcotest.(check int) "full scan keeps them" 3 d.Pqs.Plan_diff.dv_forced_rows;
  Alcotest.(check (list (pair string int)))
    "cardinalities, default first"
    [ ("default", 0); ("t0=full-scan", 3) ]
    d.Pqs.Plan_diff.dv_cardinalities;
  Alcotest.(check (list string)) "default plan names the DESC index"
    [ "SCAN t0 AS t0 USING index-range(i_desc)" ]
    d.Pqs.Plan_diff.dv_default_plan;
  Alcotest.(check (list string)) "forced plan is annotated"
    [ "SCAN t0 AS t0 USING full-scan (forced)" ]
    d.Pqs.Plan_diff.dv_forced_plan;
  let msg = Pqs.Plan_diff.message d in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("message carries " ^ sub) true
        (contains_sub sub msg))
    [
      "plan divergence on witness";
      "SELECT * FROM t0 AS t0 WHERE (c0 > 1)";
      "t0=full-scan";
      "default=0";
      "(forced)";
    ]

let test_oracle_token () =
  Alcotest.(check string) "token" "plan_diff"
    (Pqs.Bug_report.oracle_token Pqs.Bug_report.Plan_diff);
  Alcotest.(check bool) "token round-trips" true
    (Pqs.Bug_report.oracle_of_token "plan_diff" = Some Pqs.Bug_report.Plan_diff)

let test_bundle_replay () =
  let d = desc_divergence () in
  let recorder = Trace.create ~capacity:4 () in
  Trace.begin_round recorder ~seed:7 ~dialect:Dialect.Sqlite_like;
  let bundle =
    {
      Trace.Bundle.b_seed = 7;
      b_dialect = Dialect.Sqlite_like;
      b_oracle = Pqs.Bug_report.oracle_token Pqs.Bug_report.Plan_diff;
      b_message = Pqs.Plan_diff.message d;
      b_phase = "containment";
      b_bugs = [ Engine.Bug.show Engine.Bug.Sq_desc_index_range ];
      b_statements = List.map parse_sql desc_repro_script;
      b_expected = Some (string_of_int d.Pqs.Plan_diff.dv_default_rows);
      b_actual = Some (string_of_int d.Pqs.Plan_diff.dv_forced_rows);
      b_plan = d.Pqs.Plan_diff.dv_forced_plan;
      b_trace_json = Trace.to_json recorder;
    }
  in
  Alcotest.(check string) "bundle directory naming" "bundle-000007-plan_diff"
    (Trace.Bundle.dir_name bundle);
  let dir = fresh_dir "pqs_plandiff_bundle" in
  let sql_path = Trace.Bundle.write ~dir bundle in
  let headers, _ = Trace.Bundle.parse_script_text (read_file sql_path) in
  Alcotest.(check (option string)) "oracle header" (Some "plan_diff")
    (List.assoc_opt "oracle" headers);
  Alcotest.(check (option string)) "bugs header" (Some "Sq_desc_index_range")
    (List.assoc_opt "bugs" headers);
  match Pqs.Replay.check_file sql_path with
  | Error e -> Alcotest.fail ("broken bundle: " ^ e)
  | Ok o ->
      Alcotest.(check bool) "plan_diff bundles are recheckable" true
        o.Pqs.Replay.recheckable;
      Alcotest.(check bool) "replay reproduces the divergence" true
        o.Pqs.Replay.reproduced

let test_reducer () =
  let report =
    {
      Pqs.Bug_report.dialect = Dialect.Sqlite_like;
      oracle = Pqs.Bug_report.Plan_diff;
      message = "plan divergence";
      statements = List.map parse_sql desc_repro_script;
      reduced = None;
      seed = 7;
      phase = "containment";
      bundle = None;
    }
  in
  match
    (Pqs.Reducer.reduce_report report ~bugs:desc_bugs).Pqs.Bug_report.reduced
  with
  | None -> Alcotest.fail "reduction produced nothing"
  | Some reduced ->
      (* every statement is load-bearing: table, index, rows, trigger *)
      Alcotest.(check int) "statement count preserved" 4
        (List.length reduced);
      (match List.rev reduced with
      | A.Select_stmt _ :: _ -> ()
      | _ -> Alcotest.fail "detecting SELECT not kept last");
      (* the INSERT is trimmed to a single surviving row *)
      let rows =
        List.concat_map
          (function A.Insert { rows; _ } -> rows | _ -> [])
          reduced
      in
      Alcotest.(check int) "INSERT trimmed to one row" 1 (List.length rows)

(* ---------- stats monoids ---------- *)

let test_metamorphic_merge_laws () =
  let sample seed =
    Pqs.Metamorphic.run ~seed
      ~bugs:(Engine.Bug.set_of_list [ Engine.Bug.Sq_case_null_when ])
      ~max_checks:15 Dialect.Sqlite_like
  in
  let a = sample 3 and b = sample 17 and c = sample 7919 in
  let ( + ) = Pqs.Metamorphic.merge_stats in
  let e = Pqs.Metamorphic.empty_stats in
  Alcotest.(check bool) "associative" true ((a + b) + c = a + (b + c));
  Alcotest.(check bool) "left identity" true (e + a = a);
  Alcotest.(check bool) "right identity" true (a + e = a);
  Alcotest.(check int) "checks add" (a + b).Pqs.Metamorphic.checks
    Stdlib.(a.Pqs.Metamorphic.checks + b.Pqs.Metamorphic.checks);
  Alcotest.(check int) "findings concatenate in order"
    (List.length (a + b).Pqs.Metamorphic.findings)
    Stdlib.(
      List.length a.Pqs.Metamorphic.findings
      + List.length b.Pqs.Metamorphic.findings)

let test_difftest_merge_laws () =
  let sample seed =
    Baselines.Difftest.run ~max_queries:25
      (Baselines.Difftest.default_config ~seed ())
  in
  let a = sample 3 and b = sample 17 and c = sample 7919 in
  let ( + ) = Baselines.Difftest.merge_stats in
  let e = Baselines.Difftest.empty_stats in
  Alcotest.(check bool) "associative" true ((a + b) + c = a + (b + c));
  Alcotest.(check bool) "left identity" true (e + a = a);
  Alcotest.(check bool) "right identity" true (a + e = a);
  Alcotest.(check int) "queries add" (a + b).Baselines.Difftest.queries
    Stdlib.(a.Baselines.Difftest.queries + b.Baselines.Difftest.queries)

let test_plan_counters_merge () =
  let a =
    { Pqs.Stats.empty with Pqs.Stats.plan_checks = 3; plan_divergences = 1 }
  and b =
    { Pqs.Stats.empty with Pqs.Stats.plan_checks = 4; plan_divergences = 2 }
  in
  let m = Pqs.Stats.merge a b in
  Alcotest.(check int) "plan_checks add" 7 m.Pqs.Stats.plan_checks;
  Alcotest.(check int) "plan_divergences add" 3 m.Pqs.Stats.plan_divergences;
  Alcotest.(check bool) "empty is the identity on plan counters" true
    (Pqs.Stats.merge Pqs.Stats.empty a = a)

(* ---------- suite ---------- *)

let () =
  Alcotest.run "plan_diff"
    [
      ( "enumeration",
        [
          Alcotest.test_case "full scan first" `Quick test_enumerate_full_scan;
          Alcotest.test_case "default choice enumerated, no duplicates" `Quick
            test_enumerate_contains_default;
          Alcotest.test_case "deterministic" `Quick test_enumerate_deterministic;
          Alcotest.test_case "order-stability guard" `Quick test_stability_guard;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "forced = default on the fixture" `Quick
            test_forced_equals_default;
          Alcotest.test_case "1,000-seed bug-free sweep" `Quick
            test_bug_free_sweep;
          Alcotest.test_case "sweep is deterministic" `Quick
            test_sweep_deterministic;
          Alcotest.test_case "join orders agree" `Quick test_join_orders;
        ] );
      ( "detection",
        [
          Alcotest.test_case "skip-scan/DISTINCT" `Quick
            (test_detects Engine.Bug.Sq_skip_scan_distinct);
          Alcotest.test_case "OR-union dedup" `Quick
            (test_detects Engine.Bug.Sq_or_index_dedup);
          Alcotest.test_case "DESC-index range" `Quick
            (test_detects Engine.Bug.Sq_desc_index_range);
          Alcotest.test_case "cross-oracle matrix" `Slow test_detection_matrix;
        ] );
      ( "golden",
        [
          Alcotest.test_case "forced-plan EXPLAIN" `Quick test_explain_forced;
          Alcotest.test_case "forced join-swap EXPLAIN" `Quick
            test_explain_forced_swap;
          Alcotest.test_case "divergence record and message" `Quick
            test_divergence_fields;
          Alcotest.test_case "oracle token" `Quick test_oracle_token;
          Alcotest.test_case "repro bundle replays" `Quick test_bundle_replay;
          Alcotest.test_case "reducer minimizes" `Quick test_reducer;
        ] );
      ( "stats",
        [
          Alcotest.test_case "metamorphic merge laws" `Quick
            test_metamorphic_merge_laws;
          Alcotest.test_case "difftest merge laws" `Quick
            test_difftest_merge_laws;
          Alcotest.test_case "plan counters merge" `Quick
            test_plan_counters_merge;
        ] );
    ]
