(* Tests for the auxiliary PQS machinery and the extensions: expected-error
   lists, the reducer on synthetic scripts, the bug catalog's invariants,
   the RNG helpers, the metamorphic aggregate extension and the baselines'
   blind spots. *)

open Sqlval
module A = Sqlast.Ast

(* ---------- bug catalog ---------- *)

let test_catalog_invariants () =
  Alcotest.(check int) "catalog size" 56 (List.length Engine.Bug.all);
  (* of_string round-trips every name *)
  List.iter
    (fun b ->
      match Engine.Bug.of_string (Engine.Bug.show b) with
      | Some b' -> Alcotest.(check bool) "roundtrip" true (Engine.Bug.equal b b')
      | None -> Alcotest.failf "of_string failed for %s" (Engine.Bug.show b))
    Engine.Bug.all;
  (* per-dialect split matches the scaled paper proportions *)
  let count d = List.length (Engine.Bug.for_dialect d) in
  Alcotest.(check int) "sqlite entries" 32 (count Dialect.Sqlite_like);
  Alcotest.(check int) "mysql entries" 14 (count Dialect.Mysql_like);
  Alcotest.(check int) "postgres entries" 10 (count Dialect.Postgres_like);
  (* true bugs = fixed + verified *)
  let true_bugs = List.filter Engine.Bug.is_true_bug Engine.Bug.all in
  Alcotest.(check int) "true bugs" 45 (List.length true_bugs);
  (* every name encodes its dialect prefix *)
  List.iter
    (fun b ->
      let name = Engine.Bug.show b in
      let d = (Engine.Bug.info b).Engine.Bug.dialect in
      let expected_prefix =
        match d with
        | Dialect.Sqlite_like -> "Sq_"
        | Dialect.Mysql_like -> "My_"
        | Dialect.Postgres_like -> "Pg_"
      in
      Alcotest.(check bool)
        (name ^ " prefix")
        true
        (String.length name > 3 && String.sub name 0 3 = expected_prefix))
    Engine.Bug.all

let test_bug_sets () =
  let s = Engine.Bug.set_of_list [ Engine.Bug.Sq_case_null_when ] in
  Alcotest.(check bool) "member" true (Engine.Bug.on s Engine.Bug.Sq_case_null_when);
  Alcotest.(check bool) "non-member" false
    (Engine.Bug.on s Engine.Bug.My_least_mixed_types);
  Alcotest.(check int) "to_list" 1 (List.length (Engine.Bug.to_list s));
  Alcotest.(check int) "empty" 0 (List.length (Engine.Bug.to_list Engine.Bug.empty_set))

(* ---------- expected errors ---------- *)

let test_expected_errors () =
  let d = Dialect.Sqlite_like in
  let insert action =
    A.Insert { table = "t0"; columns = []; rows = [ [ A.int_lit 1L ] ]; action }
  in
  let uniq = Engine.Errors.make Engine.Errors.Unique_violation "dup" in
  Alcotest.(check bool) "plain insert may conflict" true
    (Pqs.Expected_errors.is_expected d (insert A.On_conflict_abort) uniq);
  Alcotest.(check bool) "insert OR IGNORE must not conflict" false
    (Pqs.Expected_errors.is_expected d (insert A.On_conflict_ignore) uniq);
  let malformed = Engine.Errors.make Engine.Errors.Malformed_database "bad" in
  Alcotest.(check bool) "corruption never expected" false
    (Pqs.Expected_errors.is_expected d (insert A.On_conflict_abort) malformed);
  let internal = Engine.Errors.make Engine.Errors.Internal_error "bitmapset" in
  Alcotest.(check bool) "internal never expected" false
    (Pqs.Expected_errors.is_expected d (A.Reindex None) internal);
  Alcotest.(check bool) "reindex must not fail with unique" false
    (Pqs.Expected_errors.is_expected d (A.Reindex None) uniq);
  Alcotest.(check bool) "create index may fail with unique" true
    (Pqs.Expected_errors.is_expected d
       (A.Create_index
          {
            A.ci_name = "i0";
            ci_if_not_exists = false;
            ci_table = "t0";
            ci_unique = true;
            ci_columns = [];
            ci_where = None;
          })
       uniq)

(* ---------- reducer on synthetic scripts ---------- *)

let test_reducer_synthetic () =
  (* check = "statement INSERT 42 is present and last statement kept" *)
  let key_stmt =
    A.Insert
      { table = "t0"; columns = []; rows = [ [ A.int_lit 42L ] ]; action = A.On_conflict_abort }
  in
  let noise n =
    A.Insert
      { table = "t0"; columns = []; rows = [ [ A.int_lit (Int64.of_int n) ] ]; action = A.On_conflict_abort }
  in
  let final = A.Select_stmt (A.Q_values [ [ A.int_lit 1L ] ]) in
  let script = [ noise 1; key_stmt; noise 2; noise 3; final ] in
  let check stmts =
    List.exists (fun s -> A.equal_stmt s key_stmt) stmts
    && match List.rev stmts with s :: _ -> A.equal_stmt s final | [] -> false
  in
  let reduced = Pqs.Reducer.reduce check script in
  Alcotest.(check int) "reduced to key + final" 2 (List.length reduced);
  Alcotest.(check bool) "still passes" true (check reduced)

let test_reducer_insert_rows () =
  let multi =
    A.Insert
      {
        table = "t0";
        columns = [];
        rows = [ [ A.int_lit 1L ]; [ A.int_lit 42L ]; [ A.int_lit 3L ] ];
        action = A.On_conflict_abort;
      }
  in
  let final = A.Select_stmt (A.Q_values [ [ A.int_lit 1L ] ]) in
  (* the bug needs any INSERT that still contains the row 42 *)
  let check stmts =
    List.exists
      (fun s ->
        match s with
        | A.Insert { rows; _ } ->
            List.exists
              (fun row -> List.exists (A.equal_expr (A.int_lit 42L)) row)
              rows
        | _ -> false)
      stmts
  in
  let reduced = Pqs.Reducer.reduce check (multi :: [ final ]) in
  match reduced with
  | A.Insert { rows; _ } :: _ ->
      Alcotest.(check bool) "rows trimmed" true (List.length rows <= 2)
  | _ -> Alcotest.fail "insert disappeared"

(* ---------- rng ---------- *)

let test_rng_helpers () =
  let rng = Pqs.Rng.make ~seed:5 in
  for _ = 1 to 200 do
    let v = Pqs.Rng.int_in rng 3 7 in
    Alcotest.(check bool) "int_in range" true (v >= 3 && v <= 7)
  done;
  let picked = Pqs.Rng.pick_weighted rng [ (1, `A); (0, `B) ] in
  Alcotest.(check bool) "zero weight never picked" true (picked = `A);
  let s = Pqs.Rng.sample rng 2 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "sample size" 2 (List.length s);
  Alcotest.(check int) "sample distinct" 2 (List.length (List.sort_uniq compare s));
  (* determinism: same seed, same stream *)
  let a = Pqs.Rng.make ~seed:9 and b = Pqs.Rng.make ~seed:9 in
  for _ = 1 to 50 do
    Alcotest.(check int) "deterministic" (Pqs.Rng.int a 1000) (Pqs.Rng.int b 1000)
  done

(* ---------- metamorphic extension ---------- *)

let test_metamorphic_sound () =
  List.iter
    (fun d ->
      let s = Pqs.Metamorphic.run ~seed:21 ~max_checks:300 d in
      Alcotest.(check int)
        (Printf.sprintf "no violations on correct engine (%s)" (Dialect.name d))
        0
        (List.length s.Pqs.Metamorphic.findings))
    Dialect.all

let test_metamorphic_detects () =
  let bugs =
    Engine.Bug.set_of_list [ Engine.Bug.Sq_partial_index_implies_not_null ]
  in
  let rec try_seeds = function
    | [] -> Alcotest.fail "metamorphic check missed the row-losing defect"
    | seed :: rest ->
        let s =
          Pqs.Metamorphic.run ~seed ~bugs ~max_checks:4000 Dialect.Sqlite_like
        in
        if s.Pqs.Metamorphic.findings = [] then try_seeds rest
  in
  try_seeds [ 11; 42 ]

(* ---------- baselines ---------- *)

let test_fuzzer_blind_to_logic_bugs () =
  (* a pure containment-class bug must be invisible to the fuzzer *)
  let config =
    Baselines.Fuzzer.default_config ~seed:3
      ~bugs:(Engine.Bug.set_of_list [ Engine.Bug.Sq_rtrim_compare_asymmetric ])
      Dialect.Sqlite_like
  in
  Alcotest.(check bool) "no finding" true
    (Baselines.Fuzzer.hunt config ~max_queries:2000 = None)

let test_fuzzer_sees_crashes () =
  let rec try_seeds = function
    | [] -> Alcotest.fail "fuzzer missed the crash"
    | seed :: rest -> (
        let config =
          Baselines.Fuzzer.default_config ~seed
            ~bugs:
              (Engine.Bug.set_of_list
                 [ Engine.Bug.My_check_upgrade_expr_index_crash ])
            Dialect.Mysql_like
        in
        match Baselines.Fuzzer.hunt config ~max_queries:6000 with
        | Some r ->
            Alcotest.(check string) "crash oracle" "SEGFAULT"
              (Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)
        | None -> try_seeds rest)
  in
  try_seeds [ 3; 7; 23 ]

let test_difftest_common_core_only () =
  (* clean engines: identical results everywhere *)
  let clean =
    Baselines.Difftest.run ~max_queries:800 (Baselines.Difftest.default_config ())
  in
  Alcotest.(check int) "no mismatches when correct" 0
    (List.length clean.Baselines.Difftest.findings);
  (* a dialect-feature bug is invisible to common-core differential testing *)
  let gated =
    Baselines.Difftest.run ~max_queries:800
      (Baselines.Difftest.default_config
         ~bugs:
           (Engine.Bug.set_of_list
              [ Engine.Bug.Sq_partial_index_implies_not_null ])
         ())
  in
  Alcotest.(check int) "feature-gated bug invisible" 0
    (List.length gated.Baselines.Difftest.findings);
  (* but a common-core-expressible defect is caught *)
  let core =
    Baselines.Difftest.run ~max_queries:3000
      (Baselines.Difftest.default_config
         ~bugs:(Engine.Bug.set_of_list [ Engine.Bug.Sq_null_in_list_false ])
         ())
  in
  Alcotest.(check bool) "common-core bug found" true
    (core.Baselines.Difftest.findings <> [])

(* ---------- non-containment variant ---------- *)

let test_negative_checks_sound () =
  let config =
    Pqs.Runner.Config.make ~seed:555 ~verify_ground_truth:false
      Dialect.Sqlite_like
  in
  let stats = Pqs.Runner.run ~max_queries:400 config in
  Alcotest.(check int) "no false alarms" 0 (List.length stats.Pqs.Stats.reports);
  Alcotest.(check bool) "negative checks issued" true
    (stats.Pqs.Stats.negative_checks > 0)

let test_parallel_runner () =
  let config =
    Pqs.Runner.Config.make ~seed:313 ~verify_ground_truth:false
      Dialect.Sqlite_like
  in
  let stats = Pqs.Runner.run_parallel ~workers:2 ~max_queries:200 config in
  Alcotest.(check int) "no findings on correct engine" 0
    (List.length stats.Pqs.Stats.reports);
  Alcotest.(check bool) "both workers contributed" true
    (stats.Pqs.Stats.queries >= 200);
  (* detection also works through the parallel path *)
  let bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_case_null_when ] in
  let config = Pqs.Runner.Config.make ~seed:7 ~bugs Dialect.Sqlite_like in
  let stats =
    Pqs.Runner.run_parallel ~stop_on_first:true ~workers:2 ~max_queries:8000
      config
  in
  Alcotest.(check bool) "bug found in parallel" true
    (stats.Pqs.Stats.reports <> [])

let () =
  Alcotest.run "extensions"
    [
      ( "bug catalog",
        [
          Alcotest.test_case "invariants" `Quick test_catalog_invariants;
          Alcotest.test_case "sets" `Quick test_bug_sets;
        ] );
      ( "expected errors",
        [ Alcotest.test_case "lists" `Quick test_expected_errors ] );
      ( "reducer",
        [
          Alcotest.test_case "synthetic drop" `Quick test_reducer_synthetic;
          Alcotest.test_case "insert row trim" `Quick test_reducer_insert_rows;
        ] );
      ("rng", [ Alcotest.test_case "helpers" `Quick test_rng_helpers ]);
      ( "metamorphic",
        [
          Alcotest.test_case "sound" `Slow test_metamorphic_sound;
          Alcotest.test_case "detects row loss" `Slow test_metamorphic_detects;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "fuzzer blind to logic bugs" `Slow
            test_fuzzer_blind_to_logic_bugs;
          Alcotest.test_case "fuzzer sees crashes" `Slow test_fuzzer_sees_crashes;
          Alcotest.test_case "difftest common core" `Slow
            test_difftest_common_core_only;
        ] );
      ( "non-containment",
        [ Alcotest.test_case "sound" `Slow test_negative_checks_sound ] );
      ( "parallel runner",
        [ Alcotest.test_case "merged stats sound" `Slow test_parallel_runner ] );
    ]
