(* The campaign orchestrator's contracts: sharded runs merge to the exact
   sequential result, Stats.merge obeys its monoid laws, and the runner
   accepts swapped-in oracle sets. *)

open Sqlval

(* ---------- determinism: N domains == 1 domain ---------- *)

let report_key (r : Pqs.Bug_report.t) =
  ( (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle),
    (r.Pqs.Bug_report.message, Pqs.Bug_report.script r) )

let strip_reports (s : Pqs.Stats.t) = { s with Pqs.Stats.reports = [] }

let test_determinism () =
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like) in
  let config = Pqs.Runner.Config.make ~bugs Dialect.Sqlite_like in
  let seq = Pqs.Campaign.run ~domains:1 ~seed_lo:1 ~seed_hi:25 config in
  let par = Pqs.Campaign.run ~domains:4 ~seed_lo:1 ~seed_hi:25 config in
  Alcotest.(check int)
    "same database count" 25 (par.Pqs.Campaign.stats.Pqs.Stats.databases + 1);
  Alcotest.(check bool) "campaign found bugs to compare" true
    (Pqs.Campaign.reports seq <> []);
  Alcotest.(check (list (pair (pair int string) (pair string string))))
    "identical sorted bug-report sets"
    (List.map report_key (Pqs.Campaign.reports seq))
    (List.map report_key (Pqs.Campaign.reports par));
  (* the merged stats agree on every counter, not just the reports *)
  Alcotest.(check bool) "identical merged stats" true
    (strip_reports seq.Pqs.Campaign.stats
    = strip_reports par.Pqs.Campaign.stats);
  (* and outcomes come back in ascending seed order regardless of worker *)
  let seeds = List.map (fun o -> o.Pqs.Campaign.seed) par.Pqs.Campaign.outcomes in
  Alcotest.(check (list int)) "outcomes sorted by seed"
    (List.init 24 (fun i -> i + 1))
    seeds

let test_coverage_merging () =
  let cov = Engine.Coverage.create () in
  let config = Pqs.Runner.Config.make ~coverage:cov Dialect.Sqlite_like in
  let _ = Pqs.Campaign.run ~domains:3 ~seed_lo:1 ~seed_hi:7 config in
  Alcotest.(check bool) "worker coverage merged into the campaign instrument"
    true
    (Engine.Coverage.points_hit cov > 0);
  (* the functional union of two instruments sums their hits *)
  let a = Engine.Coverage.create () and b = Engine.Coverage.create () in
  Engine.Coverage.hit a "binop.eq";
  Engine.Coverage.hit b "binop.eq";
  Engine.Coverage.hit b "binop.neq";
  let u = Engine.Coverage.union a b in
  Alcotest.(check int) "union sums hits" 2 (Engine.Coverage.hit_count u "binop.eq");
  Alcotest.(check int) "union keeps both" 1 (Engine.Coverage.hit_count u "binop.neq")

let test_trace () =
  let path = Filename.temp_file "pqs_campaign" ".jsonl" in
  let config = Pqs.Runner.Config.make Dialect.Sqlite_like in
  let c = Pqs.Campaign.run ~domains:2 ~trace:path ~seed_lo:5 ~seed_hi:11 config in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per seed plus a summary" 7 (List.length lines);
  Alcotest.(check bool) "seed lines are tagged" true
    (List.for_all
       (fun l -> String.length l > 0 && l.[0] = '{')
       lines);
  Alcotest.(check bool) "last line is the campaign summary" true
    (String.length (List.nth lines 6) > 20
    && String.sub (List.nth lines 6) 0 18 = "{\"type\":\"campaign\"");
  ignore c

(* ---------- Stats.merge monoid laws ---------- *)

let sample_stats seed =
  (* real stats from real rounds, so the laws are checked on reachable
     values (canonical truth-value keys, chronological reports) *)
  let bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_case_null_when ] in
  let config = Pqs.Runner.Config.make ~bugs Dialect.Sqlite_like in
  Pqs.Runner.run_round config ~db_seed:seed

let test_merge_laws () =
  let a = sample_stats 3 and b = sample_stats 17 and c = sample_stats 7919 in
  Alcotest.(check bool) "associative" true
    (Pqs.Stats.merge (Pqs.Stats.merge a b) c
    = Pqs.Stats.merge a (Pqs.Stats.merge b c));
  Alcotest.(check bool) "left identity" true
    (Pqs.Stats.merge Pqs.Stats.empty a = a);
  Alcotest.(check bool) "right identity" true
    (Pqs.Stats.merge a Pqs.Stats.empty = a);
  (* merge_all is the left fold *)
  Alcotest.(check bool) "merge_all folds left" true
    (Pqs.Stats.merge_all [ a; b; c ]
    = Pqs.Stats.merge (Pqs.Stats.merge a b) c)

let test_merge_counters () =
  let a = sample_stats 3 and b = sample_stats 17 in
  let m = Pqs.Stats.merge a b in
  Alcotest.(check int) "statements add" m.Pqs.Stats.statements
    (a.Pqs.Stats.statements + b.Pqs.Stats.statements);
  Alcotest.(check int) "reports concatenate"
    (List.length m.Pqs.Stats.reports)
    (List.length a.Pqs.Stats.reports + List.length b.Pqs.Stats.reports);
  let total tv = List.fold_left (fun acc (_, n) -> acc + n) 0 tv in
  Alcotest.(check int) "truth values add"
    (total m.Pqs.Stats.truth_values)
    (total a.Pqs.Stats.truth_values + total b.Pqs.Stats.truth_values)

(* ---------- oracle swapping ---------- *)

(* a stub that cries wolf on every containment check, whatever the engine
   returned *)
let wolf_oracle =
  Pqs.Oracle.make ~name:"wolf" (fun _ -> function
    | Pqs.Oracle.Containment_check _ ->
        Pqs.Oracle.Report
          { kind = Pqs.Bug_report.Error_oracle; message = "wolf!" }
    | _ -> Pqs.Oracle.Pass)

let test_oracle_swap () =
  (* with the stub swapped in, even a correct engine "fails" on the first
     containment check of every round *)
  let config =
    Pqs.Runner.Config.make ~oracles:[ wolf_oracle ] Dialect.Sqlite_like
  in
  let stats = Pqs.Runner.run ~max_queries:20 config in
  Alcotest.(check bool) "stub oracle reports" true
    (stats.Pqs.Stats.reports <> []);
  Alcotest.(check bool) "stub reports carry its message" true
    (List.for_all
       (fun (r : Pqs.Bug_report.t) -> r.Pqs.Bug_report.message = "wolf!")
       stats.Pqs.Stats.reports);
  (* with no oracles at all, nothing can be reported even with every
     catalog bug enabled *)
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect Dialect.Sqlite_like) in
  let deaf =
    Pqs.Runner.Config.make ~bugs ~oracles:[] Dialect.Sqlite_like
  in
  let stats = Pqs.Runner.run ~max_queries:60 deaf in
  Alcotest.(check int) "no oracles, no reports" 0
    (List.length stats.Pqs.Stats.reports)

let test_default_oracles_preserved () =
  (* the pluggable default set still hunts like the hard-wired loop did *)
  let bugs = Engine.Bug.set_of_list [ Engine.Bug.Sq_case_null_when ] in
  let rec go = function
    | [] -> Alcotest.fail "bug not detected through the oracle API"
    | seed :: rest -> (
        let config = Pqs.Runner.Config.make ~seed ~bugs Dialect.Sqlite_like in
        match Pqs.Runner.hunt config ~max_queries:8000 with
        | Some r ->
            Alcotest.(check string) "containment oracle" "Contains"
              (Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)
        | None -> go rest)
  in
  go [ 7; 77; 777 ]

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "N-domain == sequential" `Quick test_determinism;
          Alcotest.test_case "coverage merging" `Quick test_coverage_merging;
          Alcotest.test_case "jsonl trace" `Quick test_trace;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge monoid laws" `Quick test_merge_laws;
          Alcotest.test_case "merge counters" `Quick test_merge_counters;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "stub oracle swap" `Quick test_oracle_swap;
          Alcotest.test_case "defaults still detect" `Quick
            test_default_oracles_preserved;
        ] );
    ]
