(* Benchmark and evaluation harness.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper's evaluation (paper-vs-measured side by side) and then runs the
   Bechamel micro-benchmarks.  Individual targets:

     main.exe [quick|full] [table1 table2 table3 table4 figure2 figure3
                            perf baselines ablations metamorphic micro]

   `quick` (default) uses the full detection budgets but smaller
   coverage/throughput/ablation budgets (~5 min total); `full` is the
   evaluation-grade configuration recorded in EXPERIMENTS.md (~10 min). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)

let dialects = Sqlval.Dialect.all

let bench_btree =
  let module T = Storage.Btree.Make (struct
    type key = int

    let compare = Int.compare
  end) in
  Test.make ~name:"btree insert+remove x100"
    (Staged.stage (fun () ->
         let t = T.create () in
         for i = 0 to 99 do
           T.insert t (i * 7 mod 50) i
         done;
         for i = 0 to 49 do
           ignore (T.remove ~veq:Int.equal t (i * 7 mod 50) i)
         done))

let eval_fixture dialect =
  let session = Engine.Session.create dialect in
  let stmts =
    [
      "CREATE TABLE t0(c0 INT, c1 TEXT)";
      "INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c')";
    ]
  in
  List.iter
    (fun sql ->
      match Sqlparse.Parser.parse_stmt sql with
      | Ok stmt -> ignore (Engine.Session.execute session stmt)
      | Error _ -> ())
    stmts;
  session

let bench_query dialect =
  let session = eval_fixture dialect in
  let query =
    match
      Sqlparse.Parser.parse_stmt
        "SELECT c0, c1 FROM t0 WHERE (c0 > 1) AND (c1 <> 'zz')"
    with
    | Ok s -> s
    | Error _ -> assert false
  in
  Test.make
    ~name:(Printf.sprintf "select/%s" (Sqlval.Dialect.name dialect))
    (Staged.stage (fun () -> ignore (Engine.Session.execute session query)))

let bench_parse =
  let sql =
    "SELECT DISTINCT t0.c0, t0.c1 FROM t0, t1 WHERE ((t0.c0 IS NOT 1) AND \
     (t1.c0 BETWEEN 2 AND 30)) ORDER BY t0.c0 DESC LIMIT 10"
  in
  Test.make ~name:"parse select"
    (Staged.stage (fun () -> ignore (Sqlparse.Parser.parse_stmt sql)))

let bench_synthesize dialect =
  let session = Engine.Session.create dialect in
  let cfg = Pqs.Gen_db.Config.make ~seed:3 dialect in
  List.iter
    (fun s -> ignore (Engine.Session.execute session s))
    (Pqs.Gen_db.initial_statements cfg);
  List.iter
    (fun s -> ignore (Engine.Session.execute session s))
    (Pqs.Gen_db.fill_statements cfg session);
  let tables = Pqs.Schema_info.tables_of_session session in
  let rng = Pqs.Rng.make ~seed:3 in
  let pivot =
    List.filter_map
      (fun (ti : Pqs.Schema_info.table_info) ->
        match
          Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name
        with
        | row :: _ -> Some (ti, row)
        | [] -> None)
      tables
  in
  Test.make
    ~name:(Printf.sprintf "pqs synthesize+check/%s" (Sqlval.Dialect.name dialect))
    (Staged.stage (fun () ->
         match
           Pqs.Gen_query.synthesize ~rng ~dialect ~pivot
             ~case_sensitive_like:false ~max_depth:4 ~check_expressions:true ()
         with
         | Ok t ->
             ignore
               (Engine.Session.execute session (Pqs.Gen_query.containment_stmt t))
         | Error _ -> ()))

let run_micro () =
  Printf.printf "\n== Micro-benchmarks (Bechamel, ns/run) ==\n%!";
  let tests =
    Test.make_grouped ~name:"micro"
      ([ bench_btree; bench_parse ]
      @ List.map bench_query dialects
      @ List.map bench_synthesize dialects)
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "?"
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort compare !rows
  |> List.iter (fun (name, ns) -> Printf.printf "  %-42s %12s ns/run\n" name ns)

(* ------------------------------------------------------------------ *)
(* Experiment harness                                                   *)

type budgets = {
  detection_budget : int;
  detection_seeds : int list;
  coverage_queries : int;
  throughput_queries : int;
  ablation_queries : int;
  fuzzer_budget : int;
  difftest_budget : int;
}

(* detection budgets match full mode: hunts terminate at the first finding,
   so large budgets only cost time for genuinely missed bugs *)
let quick =
  {
    detection_budget = 30000;
    detection_seeds = [ 7; 77; 777 ];
    coverage_queries = 1500;
    throughput_queries = 1500;
    ablation_queries = 1000;
    fuzzer_budget = 3000;
    difftest_budget = 1500;
  }

let full =
  {
    detection_budget = 30000;
    detection_seeds = [ 7; 77; 777 ];
    coverage_queries = 5000;
    throughput_queries = 5000;
    ablation_queries = 2000;
    fuzzer_budget = 8000;
    difftest_budget = 3000;
  }

let detections = ref None

let get_detections b =
  match !detections with
  | Some d -> d
  | None ->
      Printf.printf
        "\nHunting all %d catalog bugs (budget %d queries x %d seeds)...\n%!"
        (List.length Engine.Bug.all)
        b.detection_budget
        (List.length b.detection_seeds);
      let d =
        Experiments.Detection.run_all ~budget:b.detection_budget
          ~seeds:b.detection_seeds ~progress:true ()
      in
      detections := Some d;
      d

let run_target b = function
  | "table1" -> Experiments.Table1.run ()
  | "table2" -> Experiments.Table2.run (get_detections b)
  | "table3" -> Experiments.Table3.run (get_detections b)
  | "table4" -> Experiments.Table4.run ~coverage_queries:b.coverage_queries ()
  | "figure2" -> detections := Some (Experiments.Figure2.run (get_detections b))
  | "figure3" -> detections := Some (Experiments.Figure3.run (get_detections b))
  | "perf" -> Experiments.Throughput.run ~queries:b.throughput_queries ()
  | "campaign" ->
      Experiments.Campaign_bench.run ~domains:4
        ~databases:(b.throughput_queries / 25) ()
  | "telemetry" ->
      Experiments.Telemetry_bench.run ~databases:(b.throughput_queries / 3) ()
  | "trace" ->
      Experiments.Trace_bench.run ~databases:(b.throughput_queries / 3) ()
  | "frontier" ->
      Experiments.Frontier_bench.run ~budget:(b.throughput_queries / 5)
        ~overhead_databases:(b.throughput_queries / 12) ()
  | "plandiff" ->
      Experiments.Plandiff_bench.run ~databases:(b.throughput_queries / 3) ()
  | "constopt" ->
      Experiments.Constopt_bench.run ~databases:(b.throughput_queries / 3) ()
  | "compile" ->
      Experiments.Compile_bench.run ~databases:(b.throughput_queries / 10) ()
  | "fleet" ->
      Experiments.Fleet_bench.run ~workers:4
        ~databases:(b.throughput_queries / 8) ()
  | "baselines" ->
      Experiments.Baseline_cmp.run ~fuzzer_budget:b.fuzzer_budget
        ~difftest_budget:b.difftest_budget (get_detections b)
  | "ablations" -> Experiments.Ablations.run ~queries:b.ablation_queries ()
  | "metamorphic" ->
      Experiments.Metamorphic_ext.run ~checks:b.ablation_queries ()
  | "micro" -> run_micro ()
  | other -> Printf.printf "unknown target: %s\n" other

let all_targets =
  [
    "table1"; "table2"; "table3"; "table4"; "figure2"; "figure3"; "perf";
    "campaign"; "telemetry"; "trace"; "frontier"; "plandiff"; "constopt";
    "compile"; "fleet";
    "baselines";
    "ablations";
    "metamorphic"; "micro";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode_name, b, targets =
    match args with
    | "full" :: rest -> ("full", full, rest)
    | "quick" :: rest -> ("quick", quick, rest)
    | rest -> ("quick", quick, rest)
  in
  let targets = if targets = [] then all_targets else targets in
  Printf.printf
    "PQS reproduction evaluation (%s mode) — paper: Rigger & Su, Testing \
     Database Engines via Pivoted Query Synthesis, OSDI 2020\n"
    mode_name;
  List.iter (run_target b) targets
