DUNE ?= dune

.PHONY: all build test smoke lint plandiff constopt compile fleet fmt bench telemetry trace frontier clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Two-domain, small-budget campaign over the correct engine: exits non-zero
# if any oracle reports (i.e. on a false positive).  Finishes well under 30s.
smoke:
	$(DUNE) exec bin/sqlancer.exe -- campaign --databases 16 -j 2 --trace /tmp/pqs_smoke.jsonl

# Static-analyzer self-check: run the typed-AST checker and plan linter
# over a fixed generated seed corpus in every dialect.  The generators are
# well-typed by construction, so any diagnostic fails the target.
lint:
	$(DUNE) exec bin/sqlancer.exe -- lint -d sqlite -s 1 --databases 100
	$(DUNE) exec bin/sqlancer.exe -- lint -d mysql -s 1 --databases 100
	$(DUNE) exec bin/sqlancer.exe -- lint -d postgres -s 1 --databases 100

# Formatting check.  The development container ships no ocamlformat binary,
# so the check is skipped (with a notice) when it is unavailable.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		$(DUNE) build @fmt; \
	else \
		echo "ocamlformat not installed; skipping fmt check"; \
	fi

bench:
	$(DUNE) exec bench/main.exe -- campaign

# Telemetry overhead gate: the same campaign with a live registry vs the
# noop sink (interleaved, best-of-6), asserting identical bug sets and a
# <5% wall-time overhead.  Writes BENCH_telemetry.json.
telemetry:
	$(DUNE) exec bench/main.exe -- quick telemetry

# Flight-recorder overhead gate: the same campaign with the ring-buffer
# recorder on vs the noop sink (interleaved, best-of-6), asserting
# identical bug sets and a <5% wall-time overhead.  Writes
# BENCH_trace.json.
trace:
	$(DUNE) exec bench/main.exe -- quick trace

# Coverage-guided generation gate: per-bug blind vs guided time to first
# detection (guided must re-detect everything blind does — guidance is
# strictly additive), plus the frontier-accounting overhead estimate
# (<5% of a blind campaign).  Writes BENCH_frontier.json.
frontier:
	$(DUNE) exec bench/main.exe -- quick frontier

# Plan-space differential oracle: bug-free sweeps must find no divergence
# (soundness), each targeted planner-bug sweep must (detection), and the
# oracle's campaign overhead at fan-out cap 4 must stay under 15%.
# Writes BENCH_plandiff.json.
plandiff:
	$(DUNE) exec bin/sqlancer.exe -- plan-diff -d sqlite -s 1 --databases 300
	$(DUNE) exec bin/sqlancer.exe -- plan-diff -d sqlite -s 1 --databases 300 -b Sq_skip_scan_distinct
	$(DUNE) exec bin/sqlancer.exe -- plan-diff -d sqlite -s 1 --databases 300 -b Sq_or_index_dedup
	$(DUNE) exec bin/sqlancer.exe -- plan-diff -d sqlite -s 1 --databases 300 -b Sq_desc_index_range
	$(DUNE) exec bench/main.exe -- quick plandiff

# Constant-optimization oracle gate: the bug-free seed sweep must pass
# (soundness: the simplifier is semantics-preserving), each targeted
# constant-folding-bug sweep must (detection), and the oracle's campaign
# overhead must stay under 15% with identical report sets on the
# unaffected oracles.  Writes BENCH_constopt.json.
constopt:
	$(DUNE) exec bin/sqlancer.exe -- const-opt -d sqlite -s 1 --databases 300
	$(DUNE) exec bin/sqlancer.exe -- const-opt -d sqlite -s 1 --databases 300 --backend compiled
	$(DUNE) exec bin/sqlancer.exe -- const-opt -d sqlite -s 1 --databases 300 -b Sq_fold_null_and
	$(DUNE) exec bin/sqlancer.exe -- const-opt -d sqlite -s 1 --databases 300 -b Sq_fold_affinity_cmp
	$(DUNE) exec bin/sqlancer.exe -- const-opt -d sqlite -s 1 --databases 300 -b Sq_fold_not_null_true
	$(DUNE) exec bench/main.exe -- quick constopt

# Execution-backend gate: the same campaign under the interpreted and the
# compiled backend (interleaved minima), asserting identical report sets
# and a >=2x rounds/sec speedup on sqlite.  Writes BENCH_compile.json.
compile:
	$(DUNE) exec bench/main.exe -- quick compile

# Fleet observability gate: scaling (per-core efficiency >= 0.8 at 4
# workers, core-aware so single-core CI is interpretable), exact merge
# (the fleet aggregate's totals equal a sequential campaign's over the
# same seeds), and kill recovery (a SIGKILLed shard's unfinished lease
# tail is requeued with no seed lost or double-merged).  Writes
# BENCH_fleet.json.
fleet:
	$(DUNE) exec bench/main.exe -- quick fleet

clean:
	$(DUNE) clean
